//! Section 6 harness: renitent constructions and isolation times
//! (Lemmas 37–38, Theorem 39), the timing complement of
//! `popele-lab renitent`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popele_dynamics::isolation::isolation_time;
use popele_graph::families;
use popele_graph::renitent::{cycle_cover, lemma38, theorem39_graph};
use std::hint::black_box;
use std::time::Duration;

fn bench_isolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("renitent/isolation");
    for n in [32u32, 64] {
        let (g, cover) = cycle_cover(n);
        group.bench_with_input(
            BenchmarkId::new("cycle", n),
            &(g, cover),
            |b, (g, cover)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(isolation_time(g, cover, seed, u64::MAX))
                });
            },
        );
    }
    for ell in [4u32, 16] {
        let base = families::clique(6);
        let (g, cover) = lemma38(&base, 0, ell);
        group.bench_with_input(
            BenchmarkId::new("lemma38-ell", ell),
            &(g, cover),
            |b, (g, cover)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(isolation_time(g, cover, seed, u64::MAX))
                });
            },
        );
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("renitent/construction");
    group.bench_function("theorem39-n16-n2.7", |b| {
        b.iter(|| black_box(theorem39_graph(16, (16f64).powf(2.7))));
    });
    group.bench_function("lemma38-k6-ell32", |b| {
        let base = families::clique(6);
        b.iter(|| black_box(lemma38(&base, 0, 32)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_isolation, bench_construction
}
criterion_main!(benches);
