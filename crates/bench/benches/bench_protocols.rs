//! Table 1 wall-time harness: time-to-stabilization of each protocol on
//! each family (the timing complement of `popele-lab table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popele_bench::bench_graph;
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{FastProtocol, IdentifierProtocol, StarProtocol, TokenProtocol};
use popele_engine::Executor;
use popele_graph::families;
use std::hint::black_box;
use std::time::Duration;

const MAX_STEPS: u64 = 2_000_000_000;

fn bench_token(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/token");
    for family in ["clique", "cycle", "star", "gnp"] {
        let g = bench_graph(family, 32);
        let p = TokenProtocol::all_candidates();
        group.bench_with_input(BenchmarkId::from_parameter(family), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let out = Executor::new(g, &p, seed)
                    .run_until_stable(MAX_STEPS)
                    .expect("stabilizes");
                black_box(out.stabilization_step)
            });
        });
    }
    group.finish();
}

fn bench_identifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/identifier");
    for family in ["clique", "cycle", "star", "gnp"] {
        let g = bench_graph(family, 32);
        let p = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
        group.bench_with_input(BenchmarkId::from_parameter(family), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let out = Executor::new(g, &p, seed)
                    .run_until_stable(MAX_STEPS)
                    .expect("stabilizes");
                black_box(out.stabilization_step)
            });
        });
    }
    group.finish();
}

fn bench_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/fast");
    for family in ["clique", "cycle", "star", "gnp"] {
        let g = bench_graph(family, 32);
        // Coarse B(G) guess: m·(D + ln n); only its log2 matters.
        let b_guess = g.num_edges() as f64
            * (f64::from(popele_graph::properties::diameter_double_sweep(&g))
                + f64::from(g.num_nodes()).ln());
        let params = FastParams::practical(b_guess, g.max_degree(), g.num_edges(), g.num_nodes());
        let p = FastProtocol::new(params);
        group.bench_with_input(BenchmarkId::from_parameter(family), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let out = Executor::new(g, &p, seed)
                    .run_until_stable(MAX_STEPS)
                    .expect("stabilizes");
                black_box(out.stabilization_step)
            });
        });
    }
    group.finish();
}

fn bench_star_trivial(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/star-trivial");
    for n in [64u32, 1024] {
        let g = families::star(n);
        let p = StarProtocol::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let out = Executor::new(g, &p, seed)
                    .run_until_stable(10)
                    .expect("one interaction");
                black_box(out.stabilization_step)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_token,
    bench_identifier,
    bench_fast,
    bench_star_trivial
}
criterion_main!(benches);
