//! Section 7 harness: influence tracking, interaction patterns and the
//! constant-state separation on dense random graphs (Theorems 40/46,
//! Lemmas 41–45), the timing complement of `popele-lab dense`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popele_bench::bench_graph;
use popele_dynamics::influence::{record_schedule, InfluenceTracker, InteractionPattern};
use popele_engine::EdgeScheduler;
use std::hint::black_box;
use std::time::Duration;

fn bench_influence_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense/influence");
    for n in [64u32, 256] {
        let g = bench_graph("gnp", n);
        let t = (0.2 * f64::from(n) * f64::from(n).ln()) as u64;
        group.bench_with_input(BenchmarkId::new("track", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut tracker = InfluenceTracker::new(g.num_nodes());
                let mut sched = EdgeScheduler::new(g, seed);
                for _ in 0..t {
                    let (u, v) = sched.next_pair();
                    tracker.interact(u, v);
                }
                black_box(tracker.max_influence_size())
            });
        });
    }
    group.finish();
}

fn bench_pattern_unfolding(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense/patterns");
    let g = bench_graph("gnp", 64);
    let t = 300usize;
    let schedule = record_schedule(&g, t, 11);
    group.bench_function("from-schedule", |b| {
        b.iter(|| black_box(InteractionPattern::from_schedule(&schedule, 0, t)));
    });
    let pattern = InteractionPattern::from_schedule(&schedule, 0, t);
    group.bench_function("unfold-fully", |b| {
        b.iter(|| black_box(pattern.unfold_fully().num_nodes()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_influence_tracking, bench_pattern_unfolding
}
criterion_main!(benches);
