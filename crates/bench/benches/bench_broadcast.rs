//! Theorem 6 / Lemma 12 / Theorem 15 harness: one-way epidemic wall time
//! across families and sizes (the timing complement of
//! `popele-lab broadcast`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use popele_bench::{bench_graph, BENCH_SIZES};
use popele_dynamics::broadcast::broadcast_time_from;
use popele_engine::EdgeScheduler;
use std::hint::black_box;
use std::time::Duration;

fn bench_epidemic(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast/epidemic");
    for family in ["clique", "cycle", "star", "torus"] {
        for n in BENCH_SIZES {
            let g = bench_graph(family, n);
            group.bench_with_input(BenchmarkId::new(family, n), &g, |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(broadcast_time_from(g, 0, seed))
                });
            });
        }
    }
    group.finish();
}

fn bench_scheduler_throughput(c: &mut Criterion) {
    // The scheduler is the innermost loop of every experiment; track its
    // raw sampling rate.
    let mut group = c.benchmark_group("broadcast/scheduler");
    let g = bench_graph("gnp", 64);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("pairs-10k", |b| {
        let mut sched = EdgeScheduler::new(&g, 7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                let (u, v) = sched.next_pair();
                acc += u64::from(u) ^ u64::from(v);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_epidemic, bench_scheduler_throughput
}
criterion_main!(benches);
