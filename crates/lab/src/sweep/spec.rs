//! Declarative sweep grids: protocols × graph families × sizes.
//!
//! A [`SweepSpec`] names every cell of a campaign up front; all
//! randomness derives from the master seed through *stable cell keys*
//! (strings like `token/cycle/2000`), so a cell's results do not depend
//! on which other cells share the grid, on execution order, or on the
//! thread count. [`SweepSpec::shards`] slices each cell's trial range
//! into fixed-size shards — the unit of checkpointing — whose
//! [`popele_engine::monte_carlo::TrialOptions::first_trial`] offsets
//! make the concatenation of shard results bit-identical to one
//! monolithic run.

use crate::workloads::Family;
use popele_math::rng::SeedSeq;
use std::fmt;

/// A protocol the sweep layer knows how to instantiate per graph.
///
/// Parameterized protocols (identifier bits, fast-protocol clock and
/// level parameters) are derived deterministically from the concrete
/// graph, exactly as the Table 1 experiment derives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// 6-state token baseline (Theorem 16).
    Token,
    /// Time-optimal identifier protocol (Theorem 21) at practical
    /// `k(n)` bits; its `O(n⁴)` state space falls back to the generic
    /// engine by design.
    Identifier,
    /// Space-efficient fast protocol (Theorem 24) with practical
    /// parameters derived from a deterministic broadcast-time guess.
    Fast,
    /// Trivial 3-state star protocol (Table 1 "Stars" row).
    Star,
    /// Exact-majority extension (Section 8) with a fixed 60/40 split.
    Majority,
}

impl ProtocolSpec {
    /// Every sweepable protocol, in canonical order.
    pub const ALL: [ProtocolSpec; 5] = [
        ProtocolSpec::Token,
        ProtocolSpec::Identifier,
        ProtocolSpec::Fast,
        ProtocolSpec::Star,
        ProtocolSpec::Majority,
    ];

    /// CLI / key name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolSpec::Token => "token",
            ProtocolSpec::Identifier => "identifier",
            ProtocolSpec::Fast => "fast",
            ProtocolSpec::Star => "star",
            ProtocolSpec::Majority => "majority",
        }
    }

    /// Parses a [`Self::label`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.label() == name)
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A full campaign grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Campaign name; outputs land under `<out>/<name>/`.
    pub name: String,
    /// Protocols to sweep.
    pub protocols: Vec<ProtocolSpec>,
    /// Graph families to sweep.
    pub families: Vec<Family>,
    /// Nominal sizes to sweep (families may round, e.g. the torus to a
    /// square).
    pub sizes: Vec<u32>,
    /// Trials per cell.
    pub trials_per_cell: usize,
    /// Trials per shard (the checkpointing granule); the last shard of
    /// a cell may be shorter.
    pub shard_trials: usize,
    /// Per-trial step budget; exhausting it records a timeout, which is
    /// a first-class result (the paper's slow protocol × family pairs
    /// are *expected* to blow any practical budget at scale).
    pub max_steps: u64,
    /// Master seed; every cell, graph and trial seed derives from it.
    pub master_seed: u64,
    /// Worker threads per shard; `0` = one per core. Never affects
    /// results. Note the effective parallelism is additionally capped
    /// at [`Self::shard_trials`]: shards run sequentially (so the
    /// checkpoint advances in deterministic order) and a shard has only
    /// `shard_trials` independent trials to hand out. Raise the shard
    /// size to use more cores at the cost of coarser checkpoints.
    pub threads: usize,
    /// Cells whose family would need more than this many edges are
    /// skipped (recorded as such in the summary) instead of
    /// materializing a multi-gigabyte edge list.
    pub max_edges: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self {
            name: "sweep".into(),
            protocols: vec![
                ProtocolSpec::Token,
                ProtocolSpec::Identifier,
                ProtocolSpec::Fast,
            ],
            families: vec![
                Family::Cycle,
                Family::Star,
                Family::Torus,
                Family::RandomRegular4,
            ],
            sizes: vec![2_000, 16_000, 80_000],
            trials_per_cell: 4,
            shard_trials: 2,
            max_steps: 30_000_000,
            master_seed: 0xC0FFEE,
            threads: 0,
            max_edges: 1 << 27,
        }
    }
}

/// One cell of the grid: a (protocol, family, nominal size) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Graph family.
    pub family: Family,
    /// Nominal size.
    pub size: u32,
}

impl CellSpec {
    /// Stable key of the cell, e.g. `token/cycle/2000`. Seeds and
    /// checkpoint entries are addressed by this key, so a cell's
    /// results are independent of the rest of the grid.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}",
            self.protocol.label(),
            self.family.label(),
            self.size
        )
    }
}

/// One shard of a cell: a contiguous trial range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The cell this shard belongs to.
    pub cell: CellSpec,
    /// Index of the shard within its cell.
    pub shard: usize,
    /// Global index of the shard's first trial within the cell.
    pub first_trial: usize,
    /// Number of trials in this shard.
    pub trials: usize,
}

impl ShardSpec {
    /// Stable checkpoint key, e.g. `token/cycle/2000/s1`.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/s{}", self.cell.key(), self.shard)
    }
}

/// FNV-1a hash of a key string — the stable bridge from cell keys to
/// seed-sequence children.
#[must_use]
fn key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl SweepSpec {
    /// Whether `name` is safe to use as the campaign's directory name:
    /// non-empty and free of path separators or parent references, so
    /// `<out>/<name>` can never resolve outside (or *to*) the output
    /// directory — which matters because the CLI's `--fresh` deletes it.
    #[must_use]
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty() && name != "." && name != ".." && !name.contains(['/', '\\'])
    }

    /// The grid's cells, family-major then size then protocol, so
    /// consecutive cells share a graph and the runner can reuse it.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for &family in &self.families {
            for &size in &self.sizes {
                for &protocol in &self.protocols {
                    cells.push(CellSpec {
                        protocol,
                        family,
                        size,
                    });
                }
            }
        }
        cells
    }

    /// Why a cell cannot run, if it cannot: its graph would exceed the
    /// edge budget, or its protocol's stability oracle is only exact on
    /// a family it is not paired with (the star protocol off stars).
    /// Skipped cells are excluded from [`Self::shards`] and recorded as
    /// skipped — with this reason — in the campaign summary.
    #[must_use]
    pub fn cell_skip_reason(&self, cell: &CellSpec) -> Option<String> {
        if cell.family.approx_edges(cell.size) > self.max_edges {
            return Some(format!(
                "~{} edges exceed the max_edges budget of {}",
                cell.family.approx_edges(cell.size),
                self.max_edges
            ));
        }
        if cell.protocol == ProtocolSpec::Star && cell.family != Family::Star {
            return Some("the star protocol's oracle is only exact on stars".into());
        }
        None
    }

    /// All runnable shards, in deterministic execution order (skipped
    /// cells excluded — they appear only in the summary's skip list).
    #[must_use]
    pub fn shards(&self) -> Vec<ShardSpec> {
        let shard_trials = self.shard_trials.max(1);
        let mut shards = Vec::new();
        for cell in self.cells() {
            if self.cell_skip_reason(&cell).is_some() {
                continue;
            }
            let mut first_trial = 0;
            let mut shard = 0;
            while first_trial < self.trials_per_cell {
                let trials = shard_trials.min(self.trials_per_cell - first_trial);
                shards.push(ShardSpec {
                    cell,
                    shard,
                    first_trial,
                    trials,
                });
                first_trial += trials;
                shard += 1;
            }
        }
        shards
    }

    /// The master seed of a cell's trial sequence. Derived from the
    /// cell *key*, not its position, so adding or removing other
    /// protocols/families/sizes never changes this cell's results.
    #[must_use]
    pub fn cell_seed(&self, cell: &CellSpec) -> u64 {
        SeedSeq::new(self.master_seed).child(key_hash(&cell.key()))
    }

    /// The seed used to generate the `(family, size)` graph — shared by
    /// every protocol in the grid, so protocols are compared on the
    /// *same* random graph instance.
    #[must_use]
    pub fn graph_seed(&self, family: Family, size: u32) -> u64 {
        let key = format!("graph/{}/{}", family.label(), size);
        SeedSeq::new(self.master_seed).child(key_hash(&key))
    }

    /// Canonical one-line fingerprint of everything that determines the
    /// campaign's results. Checkpoints store it; resuming with a
    /// different grid is refused instead of silently mixing results.
    /// (`threads` is deliberately absent: it never affects results.)
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let list = |items: Vec<String>| items.join(",");
        format!(
            "v1;protocols={};families={};sizes={};trials={};shard={};max_steps={};seed={};max_edges={}",
            list(self.protocols.iter().map(|p| p.label().to_string()).collect()),
            list(self.families.iter().map(|f| f.label().to_string()).collect()),
            list(self.sizes.iter().map(|s| s.to_string()).collect()),
            self.trials_per_cell,
            self.shard_trials.max(1),
            self.max_steps,
            self.master_seed,
            self.max_edges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
            families: vec![Family::Clique, Family::Cycle],
            sizes: vec![8, 12],
            trials_per_cell: 5,
            shard_trials: 2,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn protocol_labels_roundtrip() {
        for p in ProtocolSpec::ALL {
            assert_eq!(ProtocolSpec::parse(p.label()), Some(p));
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!(ProtocolSpec::parse("nope"), None);
    }

    #[test]
    fn family_labels_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.label()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn grid_enumeration_and_sharding() {
        let spec = tiny();
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].key(), "token/clique/8");
        assert_eq!(cells[1].key(), "majority/clique/8");
        // 5 trials in shards of 2 → 2 + 2 + 1 per cell.
        let shards = spec.shards();
        assert_eq!(shards.len(), 8 * 3);
        assert_eq!(shards[2].key(), "token/clique/8/s2");
        assert_eq!(shards[2].first_trial, 4);
        assert_eq!(shards[2].trials, 1);
        assert_eq!(
            shards.iter().map(|s| s.trials).sum::<usize>(),
            8 * spec.trials_per_cell
        );
    }

    #[test]
    fn cell_seeds_are_grid_independent() {
        let spec = tiny();
        let mut bigger = tiny();
        bigger.protocols.push(ProtocolSpec::Majority);
        bigger.sizes.push(16);
        let cell = CellSpec {
            protocol: ProtocolSpec::Token,
            family: Family::Cycle,
            size: 12,
        };
        assert_eq!(spec.cell_seed(&cell), bigger.cell_seed(&cell));
        assert_eq!(
            spec.graph_seed(Family::Cycle, 12),
            bigger.graph_seed(Family::Cycle, 12)
        );
        // Distinct cells get distinct seeds.
        let other = CellSpec {
            protocol: ProtocolSpec::Star,
            ..cell
        };
        assert_ne!(spec.cell_seed(&cell), spec.cell_seed(&other));
    }

    #[test]
    fn oversized_cells_are_excluded_from_shards() {
        let mut spec = tiny();
        spec.max_edges = 30; // clique(12) has 66 edges, cycle(12) has 12
        let shards = spec.shards();
        assert!(shards
            .iter()
            .all(|s| !(s.cell.family == Family::Clique && s.cell.size == 12)));
        assert!(shards
            .iter()
            .any(|s| s.cell.family == Family::Clique && s.cell.size == 8));
        assert!(spec
            .cell_skip_reason(&CellSpec {
                protocol: ProtocolSpec::Token,
                family: Family::Clique,
                size: 12,
            })
            .is_some());
    }

    #[test]
    fn star_protocol_restricted_to_stars() {
        let spec = SweepSpec {
            protocols: vec![ProtocolSpec::Star],
            families: vec![Family::Star, Family::Cycle],
            sizes: vec![8],
            ..SweepSpec::default()
        };
        let cells: Vec<_> = spec.shards().iter().map(|s| s.cell).collect();
        assert!(cells.iter().all(|c| c.family == Family::Star));
        assert!(!cells.is_empty());
    }

    #[test]
    fn name_validation() {
        assert!(SweepSpec::valid_name("sweep"));
        assert!(SweepSpec::valid_name("table1-repro.v2"));
        for bad in ["", ".", "..", "a/b", "a\\b", "../escape"] {
            assert!(!SweepSpec::valid_name(bad), "{bad:?} accepted");
        }
    }

    #[test]
    fn fingerprint_tracks_result_relevant_fields_only() {
        let spec = tiny();
        let mut same_results = tiny();
        same_results.threads = 7;
        same_results.name = "other".into();
        assert_eq!(spec.fingerprint(), same_results.fingerprint());
        let mut different = tiny();
        different.master_seed ^= 1;
        assert_ne!(spec.fingerprint(), different.fingerprint());
    }
}
