//! Declarative sweep grids: protocols × graph families × sizes.
//!
//! A [`SweepSpec`] names every cell of a campaign up front; all
//! randomness derives from the master seed through *stable cell keys*
//! (strings like `token/cycle/2000`), so a cell's results do not depend
//! on which other cells share the grid, on execution order, or on the
//! thread count. [`SweepSpec::shards`] slices each cell's trial range
//! into fixed-size shards — the unit of checkpointing — whose
//! [`popele_engine::monte_carlo::TrialOptions::first_trial`] offsets
//! make the concatenation of shard results bit-identical to one
//! monolithic run.

use super::json::Json;
use crate::workloads::Family;
use popele_engine::faults::{FaultEvent, FaultKind, FaultPlan};
use popele_math::rng::SeedSeq;
use std::fmt;

/// A protocol the sweep layer knows how to instantiate per graph.
///
/// Parameterized protocols (identifier bits, fast-protocol clock and
/// level parameters) are derived deterministically from the concrete
/// graph, exactly as the Table 1 experiment derives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolSpec {
    /// 6-state token baseline (Theorem 16).
    Token,
    /// Time-optimal identifier protocol (Theorem 21) at practical
    /// `k(n)` bits; its `O(n⁴)` state space falls back to the generic
    /// engine by design.
    Identifier,
    /// Space-efficient fast protocol (Theorem 24) with practical
    /// parameters derived from a deterministic broadcast-time guess.
    Fast,
    /// Trivial 3-state star protocol (Table 1 "Stars" row).
    Star,
    /// Exact-majority extension (Section 8) with a fixed 60/40 split.
    Majority,
    /// Loosely-stabilizing timeout/propagation election (Kanaya et al.
    /// 2024 regime) at the practical budget `τ = 8·bitlen(n)` — runs
    /// from *arbitrary* start configurations and records election
    /// **and** holding metrics.
    Loose,
    /// The ring-specialized loosely-stabilizing variant
    /// (distance-to-leader invalidation with `B = 2n`); restricted to
    /// the cycle family, whose hop distances its bound is derived for.
    RingLoose,
    /// Space-optimal junta race with a leaderless phase clock
    /// (Gąsieniec–Stachowiak) at `practical(n)` parameters — `O(log
    /// log n)` candidate levels, so it compiles for the AOT and count
    /// tiers at every sweep size; restricted to the clique family,
    /// whose interaction model its duel rule assumes.
    SpaceOpt,
    /// Time-optimal self-stabilizing ring election via bounded-timer
    /// token circulation (arXiv 2009.10926 regime) at `for_ring(n)`
    /// timers — runs the arbitrary-start stabilization workload like
    /// [`ProtocolSpec::RingLoose`] and is likewise cycle-only.
    RingTimeOpt,
}

impl ProtocolSpec {
    /// Every sweepable protocol, in canonical order. This array **is**
    /// the protocol registry: the CLI `--help` enumeration, label
    /// parsing and the usage lists all derive from it, so a protocol
    /// added here shows up everywhere automatically.
    pub const ALL: [ProtocolSpec; 9] = [
        ProtocolSpec::Token,
        ProtocolSpec::Identifier,
        ProtocolSpec::Fast,
        ProtocolSpec::Star,
        ProtocolSpec::Majority,
        ProtocolSpec::Loose,
        ProtocolSpec::RingLoose,
        ProtocolSpec::SpaceOpt,
        ProtocolSpec::RingTimeOpt,
    ];

    /// CLI / key name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolSpec::Token => "token",
            ProtocolSpec::Identifier => "identifier",
            ProtocolSpec::Fast => "fast",
            ProtocolSpec::Star => "star",
            ProtocolSpec::Majority => "majority",
            ProtocolSpec::Loose => "loose",
            ProtocolSpec::RingLoose => "ring-loose",
            ProtocolSpec::SpaceOpt => "space-opt",
            ProtocolSpec::RingTimeOpt => "ring-time-opt",
        }
    }

    /// Parses a [`Self::label`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.label() == name)
    }

    /// Whether this protocol runs the self-stabilization workload:
    /// arbitrary start configurations, election measured as the time to
    /// the first unique-leader configuration, plus holding metrics
    /// (see [`popele_engine::stabilize`]). These cells' records carry a
    /// holding column set in checkpoints and summaries.
    #[must_use]
    pub fn is_stabilizing(self) -> bool {
        matches!(
            self,
            ProtocolSpec::Loose | ProtocolSpec::RingLoose | ProtocolSpec::RingTimeOpt
        )
    }

    /// Whether this protocol can run on the count-based batch engine
    /// ([`popele_engine::CountEngine`]): its stability oracle must be
    /// evaluable from a state census alone (linear leader counting or
    /// [`popele_engine::StabilityOracle::recompute_census`]). The
    /// identifier protocol's oracle needs per-node identity and the
    /// loosely-stabilizing cells need arbitrary per-node start
    /// configurations, so neither qualifies; the star protocol's oracle
    /// is census-friendly but only exact off cliques' complement — it
    /// never pairs with the clique family in the first place.
    #[must_use]
    pub fn is_count_capable(self) -> bool {
        matches!(
            self,
            ProtocolSpec::Token
                | ProtocolSpec::Fast
                | ProtocolSpec::Majority
                | ProtocolSpec::SpaceOpt
        )
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named fault-intensity profile — the sweepable *adversity axis*.
///
/// Each profile maps a concrete graph size to a deterministic
/// [`FaultPlan`] (see [`FaultSpec::plan`]); the per-trial fault
/// realization then derives from the trial seed, which derives from the
/// stable cell key, so fault cells obey the same reproducibility
/// contract as everything else. The step unit below is
/// `base(n) = n·bitlen(n)` interactions (`bitlen = ⌊log₂ n⌋ + 1`) — a
/// few parallel "rounds", so faults strike while (or shortly after)
/// typical protocols converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSpec {
    /// No faults: the baseline axis value (and the default).
    None,
    /// Three bursts of state corruption (5% of nodes each, at least 1)
    /// at steps `4·base`, `8·base`, `12·base`.
    Corrupt,
    /// Node churn: joins (degree 2) at `4·base` and `8·base`, leaves at
    /// `6·base` and `10·base`.
    Churn,
    /// Six edge rewirings, every `2·base` steps from `4·base` on.
    Rewire,
}

impl FaultSpec {
    /// Every profile, in canonical order.
    pub const ALL: [FaultSpec; 4] = [
        FaultSpec::None,
        FaultSpec::Corrupt,
        FaultSpec::Churn,
        FaultSpec::Rewire,
    ];

    /// CLI / key name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultSpec::None => "none",
            FaultSpec::Corrupt => "corrupt",
            FaultSpec::Churn => "churn",
            FaultSpec::Rewire => "rewire",
        }
    }

    /// Parses a [`Self::label`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|f| f.label() == name)
    }

    /// The profile's concrete schedule for an `n`-node graph. A pure
    /// function of `(self, n)`, so every shard of a cell derives the
    /// identical plan.
    #[must_use]
    pub fn plan(self, n: u32) -> FaultPlan {
        let base = u64::from(n.max(2)) * u64::from(32 - n.max(2).leading_zeros());
        match self {
            FaultSpec::None => FaultPlan::empty(),
            FaultSpec::Corrupt => FaultPlan::periodic(
                FaultKind::CorruptNodes {
                    count: (n / 20).max(1),
                },
                4 * base,
                4 * base,
                3,
            ),
            FaultSpec::Churn => FaultPlan::at(4 * base, FaultKind::JoinNode { degree: 2 })
                .and(6 * base, FaultKind::LeaveNode)
                .and(8 * base, FaultKind::JoinNode { degree: 2 })
                .and(10 * base, FaultKind::LeaveNode),
            FaultSpec::Rewire => FaultPlan::periodic(FaultKind::RewireEdge, 4 * base, 2 * base, 6),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Serializes a [`FaultPlan`] as a deterministic [`Json`] tree (the
/// canonical embedding of custom plans into sweep artifacts). The
/// rendering is byte-stable: `render ∘ parse ∘ render = render`, and
/// [`fault_plan_from_json`] inverts it exactly.
#[must_use]
pub fn fault_plan_to_json(plan: &FaultPlan) -> Json {
    let events = plan
        .events
        .iter()
        .map(|e| {
            let mut members = vec![("step".to_string(), Json::from_u64(e.step))];
            let kind = |k: &str| ("kind".to_string(), Json::Str(k.into()));
            match e.kind {
                FaultKind::CorruptNodes { count } => {
                    members.push(kind("corrupt"));
                    members.push(("count".into(), Json::from_u64(u64::from(count))));
                }
                FaultKind::AddEdge => members.push(kind("add-edge")),
                FaultKind::RemoveEdge => members.push(kind("remove-edge")),
                FaultKind::RewireEdge => members.push(kind("rewire-edge")),
                FaultKind::JoinNode { degree } => {
                    members.push(kind("join"));
                    members.push(("degree".into(), Json::from_u64(u64::from(degree))));
                }
                FaultKind::LeaveNode => members.push(kind("leave")),
            }
            Json::Obj(members)
        })
        .collect();
    Json::Obj(vec![("events".into(), Json::Arr(events))])
}

/// Parses the [`fault_plan_to_json`] representation back into a plan.
///
/// # Errors
///
/// Returns a message on a missing/mistyped field or an unknown kind.
pub fn fault_plan_from_json(json: &Json) -> Result<FaultPlan, String> {
    let rows = json
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("fault plan missing events array")?;
    let mut events = Vec::with_capacity(rows.len());
    for row in rows {
        let step = row
            .get("step")
            .and_then(Json::as_u64)
            .ok_or("event missing step")?;
        let u32_field = |name: &str| -> Result<u32, String> {
            let raw = row
                .get(name)
                .and_then(Json::as_u64)
                .ok_or(format!("event missing {name}"))?;
            u32::try_from(raw).map_err(|e| e.to_string())
        };
        let kind = match row.get("kind").and_then(Json::as_str) {
            Some("corrupt") => FaultKind::CorruptNodes {
                count: u32_field("count")?,
            },
            Some("add-edge") => FaultKind::AddEdge,
            Some("remove-edge") => FaultKind::RemoveEdge,
            Some("rewire-edge") => FaultKind::RewireEdge,
            Some("join") => FaultKind::JoinNode {
                degree: u32_field("degree")?,
            },
            Some("leave") => FaultKind::LeaveNode,
            Some(other) => return Err(format!("unknown fault kind {other:?}")),
            None => return Err("event missing kind".into()),
        };
        events.push(FaultEvent { step, kind });
    }
    Ok(FaultPlan { events })
}

/// A full campaign grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Campaign name; outputs land under `<out>/<name>/`.
    pub name: String,
    /// Protocols to sweep.
    pub protocols: Vec<ProtocolSpec>,
    /// Graph families to sweep.
    pub families: Vec<Family>,
    /// Nominal sizes to sweep (families may round, e.g. the torus to a
    /// square).
    pub sizes: Vec<u32>,
    /// Fault-intensity profiles to sweep. The default, `[None]`, is the
    /// classic fault-free grid — and keeps cell keys and the
    /// fingerprint identical to pre-fault campaigns, so existing
    /// checkpoints still resume.
    pub faults: Vec<FaultSpec>,
    /// Trials per cell.
    pub trials_per_cell: usize,
    /// Trials per shard (the checkpointing granule); the last shard of
    /// a cell may be shorter.
    pub shard_trials: usize,
    /// Per-trial step budget; exhausting it records a timeout, which is
    /// a first-class result (the paper's slow protocol × family pairs
    /// are *expected* to blow any practical budget at scale).
    pub max_steps: u64,
    /// Master seed; every cell, graph and trial seed derives from it.
    pub master_seed: u64,
    /// Worker threads per shard; `0` = one per core. Never affects
    /// results. Note the effective parallelism is additionally capped
    /// at [`Self::shard_trials`]: shards run sequentially (so the
    /// checkpoint advances in deterministic order) and a shard has only
    /// `shard_trials` independent trials to hand out. Raise the shard
    /// size to use more cores at the cost of coarser checkpoints.
    pub threads: usize,
    /// Cells whose family would need more than this many edges are
    /// skipped (recorded as such in the summary) instead of
    /// materializing a multi-gigabyte edge list.
    pub max_edges: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self {
            name: "sweep".into(),
            protocols: vec![
                ProtocolSpec::Token,
                ProtocolSpec::Identifier,
                ProtocolSpec::Fast,
            ],
            families: vec![
                Family::Cycle,
                Family::Star,
                Family::Torus,
                Family::RandomRegular4,
                Family::Clique,
            ],
            // The three classic per-agent sizes plus the count-engine
            // range: on the sparse families the big sizes skip (edge
            // budget), on the clique they run graph-free on the count
            // tier. Electing at the big sizes needs a raised
            // `max_steps` (the default budget records feasibility
            // timeouts, not elections — an election at 10⁸ takes
            // ~10¹⁰ interactions).
            sizes: vec![
                2_000,
                16_000,
                80_000,
                10_000_000,
                100_000_000,
                1_000_000_000,
            ],
            faults: vec![FaultSpec::None],
            trials_per_cell: 4,
            shard_trials: 2,
            max_steps: 30_000_000,
            master_seed: 0xC0FFEE,
            threads: 0,
            // Sized so the default grid fits laptop memory — a clique
            // materializes up to ~4_000 nodes; beyond that the clique
            // column is served by the count tier (or skipped, with the
            // reason recorded) — and so the sparse families stop below
            // the count range: a 10⁷-node cycle fits in RAM but a
            // sequential election on it cannot finish inside any sane
            // step budget, so those cells skip rather than time out.
            max_edges: 1 << 23,
        }
    }
}

/// One cell of the grid: a (protocol, family, nominal size, fault
/// profile) tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Graph family.
    pub family: Family,
    /// Nominal size.
    pub size: u32,
    /// Fault-intensity profile.
    pub fault: FaultSpec,
}

impl CellSpec {
    /// Stable key of the cell, e.g. `token/cycle/2000` — or
    /// `token/cycle/2000/corrupt` for a faulted cell. Seeds and
    /// checkpoint entries are addressed by this key, so a cell's
    /// results are independent of the rest of the grid; fault-free
    /// cells keep their pre-fault-axis keys (and therefore seeds).
    #[must_use]
    pub fn key(&self) -> String {
        let base = format!(
            "{}/{}/{}",
            self.protocol.label(),
            self.family.label(),
            self.size
        );
        match self.fault {
            FaultSpec::None => base,
            fault => format!("{base}/{fault}"),
        }
    }
}

/// One shard of a cell: a contiguous trial range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The cell this shard belongs to.
    pub cell: CellSpec,
    /// Index of the shard within its cell.
    pub shard: usize,
    /// Global index of the shard's first trial within the cell.
    pub first_trial: usize,
    /// Number of trials in this shard.
    pub trials: usize,
}

impl ShardSpec {
    /// Stable checkpoint key, e.g. `token/cycle/2000/s1`.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}/s{}", self.cell.key(), self.shard)
    }
}

/// FNV-1a hash of a key string — the stable bridge from cell keys to
/// seed-sequence children.
#[must_use]
fn key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl SweepSpec {
    /// Whether `name` is safe to use as the campaign's directory name:
    /// non-empty and free of path separators or parent references, so
    /// `<out>/<name>` can never resolve outside (or *to*) the output
    /// directory — which matters because the CLI's `--fresh` deletes it.
    #[must_use]
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty() && name != "." && name != ".." && !name.contains(['/', '\\'])
    }

    /// The grid's cells, family-major then size then protocol then
    /// fault profile, so consecutive cells share a graph and the runner
    /// can reuse it.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        for &family in &self.families {
            for &size in &self.sizes {
                for &protocol in &self.protocols {
                    for &fault in &self.faults {
                        cells.push(CellSpec {
                            protocol,
                            family,
                            size,
                            fault,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Whether a cell runs on the count-based batch engine instead of a
    /// materialized graph: a fault-free clique cell at count scale
    /// (at least [`popele_engine::dense::COUNT_MIN_AGENTS`] agents)
    /// whose protocol is [`ProtocolSpec::is_count_capable`]. Count
    /// cells never materialize an edge list, so the
    /// [`Self::max_edges`] budget does not apply to them — this is the
    /// clique-only door into the `10⁷–10⁹` sizes. Fault cells are
    /// excluded because fault injection edits per-agent state and
    /// topology, neither of which exists in count space.
    #[must_use]
    pub fn cell_is_count(&self, cell: &CellSpec) -> bool {
        cell.family == Family::Clique
            && cell.fault == FaultSpec::None
            && u64::from(cell.size) >= popele_engine::dense::COUNT_MIN_AGENTS
            && cell.protocol.is_count_capable()
    }

    /// Why a cell cannot run, if it cannot: its graph would exceed the
    /// edge budget (and, on cliques, the count tier could not pick it
    /// up — the reason says why), or its protocol's stability oracle is
    /// only exact on a family it is not paired with (the star protocol
    /// off stars). Skipped cells are excluded from [`Self::shards`] and
    /// recorded as skipped — with this reason — in the campaign summary.
    #[must_use]
    pub fn cell_skip_reason(&self, cell: &CellSpec) -> Option<String> {
        if !self.cell_is_count(cell) && cell.family.approx_edges(cell.size) > self.max_edges {
            let mut reason = format!(
                "~{} edges exceed the max_edges budget of {}",
                cell.family.approx_edges(cell.size),
                self.max_edges
            );
            if cell.family == Family::Clique {
                let why = if !cell.protocol.is_count_capable() {
                    Some(format!(
                        "the {} protocol's oracle cannot be evaluated from a state census",
                        cell.protocol
                    ))
                } else if cell.fault != FaultSpec::None {
                    Some("fault injection needs per-agent identity".to_string())
                } else {
                    None
                };
                if let Some(why) = why {
                    reason = format!("{reason}; not count-engine eligible: {why}");
                }
            }
            return Some(reason);
        }
        if cell.protocol == ProtocolSpec::Star && cell.family != Family::Star {
            return Some("the star protocol's oracle is only exact on stars".into());
        }
        if cell.protocol == ProtocolSpec::Star
            && matches!(cell.fault, FaultSpec::Churn | FaultSpec::Rewire)
        {
            return Some(
                "topology faults break the star shape the star protocol's oracle needs".into(),
            );
        }
        if cell.protocol == ProtocolSpec::RingLoose && cell.family != Family::Cycle {
            return Some(
                "the ring variant's distance bound is derived for cycle hop distances".into(),
            );
        }
        if cell.protocol == ProtocolSpec::SpaceOpt && cell.family != Family::Clique {
            return Some(
                "the junta duel rule assumes the clique interaction model; sparse graphs \
                 can strand two ceiling-level candidates with no adjacent duel"
                    .into(),
            );
        }
        if cell.protocol == ProtocolSpec::RingTimeOpt && cell.family != Family::Cycle {
            return Some(
                "token circulation and its timer bounds are derived for the ring topology".into(),
            );
        }
        None
    }

    /// All runnable shards, in deterministic execution order (skipped
    /// cells excluded — they appear only in the summary's skip list).
    #[must_use]
    pub fn shards(&self) -> Vec<ShardSpec> {
        let shard_trials = self.shard_trials.max(1);
        let mut shards = Vec::new();
        for cell in self.cells() {
            if self.cell_skip_reason(&cell).is_some() {
                continue;
            }
            let mut first_trial = 0;
            let mut shard = 0;
            while first_trial < self.trials_per_cell {
                let trials = shard_trials.min(self.trials_per_cell - first_trial);
                shards.push(ShardSpec {
                    cell,
                    shard,
                    first_trial,
                    trials,
                });
                first_trial += trials;
                shard += 1;
            }
        }
        shards
    }

    /// The master seed of a cell's trial sequence. Derived from the
    /// cell *key*, not its position, so adding or removing other
    /// protocols/families/sizes never changes this cell's results.
    #[must_use]
    pub fn cell_seed(&self, cell: &CellSpec) -> u64 {
        SeedSeq::new(self.master_seed).child(key_hash(&cell.key()))
    }

    /// The seed used to generate the `(family, size)` graph — shared by
    /// every protocol in the grid, so protocols are compared on the
    /// *same* random graph instance.
    #[must_use]
    pub fn graph_seed(&self, family: Family, size: u32) -> u64 {
        let key = format!("graph/{}/{}", family.label(), size);
        SeedSeq::new(self.master_seed).child(key_hash(&key))
    }

    /// Canonical one-line fingerprint of everything that determines the
    /// campaign's results. Checkpoints store it; resuming with a
    /// different grid is refused instead of silently mixing results.
    /// (`threads` is deliberately absent: it never affects results. A
    /// `faults=` clause appears only for a non-default fault axis, so
    /// pre-fault-axis checkpoints of fault-free grids still resume.)
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let list = |items: Vec<String>| items.join(",");
        let faults = if self.faults == [FaultSpec::None] {
            String::new()
        } else {
            format!(
                ";faults={}",
                list(self.faults.iter().map(|f| f.label().to_string()).collect())
            )
        };
        format!(
            "v1;protocols={};families={};sizes={};trials={};shard={};max_steps={};seed={};max_edges={}{faults}",
            list(self.protocols.iter().map(|p| p.label().to_string()).collect()),
            list(self.families.iter().map(|f| f.label().to_string()).collect()),
            list(self.sizes.iter().map(|s| s.to_string()).collect()),
            self.trials_per_cell,
            self.shard_trials.max(1),
            self.max_steps,
            self.master_seed,
            self.max_edges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
            families: vec![Family::Clique, Family::Cycle],
            sizes: vec![8, 12],
            trials_per_cell: 5,
            shard_trials: 2,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn protocol_labels_roundtrip() {
        for p in ProtocolSpec::ALL {
            assert_eq!(ProtocolSpec::parse(p.label()), Some(p));
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!(ProtocolSpec::parse("nope"), None);
    }

    #[test]
    fn family_labels_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.label()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn grid_enumeration_and_sharding() {
        let spec = tiny();
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].key(), "token/clique/8");
        assert_eq!(cells[1].key(), "majority/clique/8");
        // 5 trials in shards of 2 → 2 + 2 + 1 per cell.
        let shards = spec.shards();
        assert_eq!(shards.len(), 8 * 3);
        assert_eq!(shards[2].key(), "token/clique/8/s2");
        assert_eq!(shards[2].first_trial, 4);
        assert_eq!(shards[2].trials, 1);
        assert_eq!(
            shards.iter().map(|s| s.trials).sum::<usize>(),
            8 * spec.trials_per_cell
        );
    }

    #[test]
    fn cell_seeds_are_grid_independent() {
        let spec = tiny();
        let mut bigger = tiny();
        bigger.protocols.push(ProtocolSpec::Majority);
        bigger.sizes.push(16);
        let cell = CellSpec {
            protocol: ProtocolSpec::Token,
            family: Family::Cycle,
            size: 12,
            fault: FaultSpec::None,
        };
        assert_eq!(spec.cell_seed(&cell), bigger.cell_seed(&cell));
        assert_eq!(
            spec.graph_seed(Family::Cycle, 12),
            bigger.graph_seed(Family::Cycle, 12)
        );
        // Distinct cells get distinct seeds.
        let other = CellSpec {
            protocol: ProtocolSpec::Star,
            ..cell
        };
        assert_ne!(spec.cell_seed(&cell), spec.cell_seed(&other));
    }

    #[test]
    fn oversized_cells_are_excluded_from_shards() {
        let mut spec = tiny();
        spec.max_edges = 30; // clique(12) has 66 edges, cycle(12) has 12
        let shards = spec.shards();
        assert!(shards
            .iter()
            .all(|s| !(s.cell.family == Family::Clique && s.cell.size == 12)));
        assert!(shards
            .iter()
            .any(|s| s.cell.family == Family::Clique && s.cell.size == 8));
        assert!(spec
            .cell_skip_reason(&CellSpec {
                protocol: ProtocolSpec::Token,
                family: Family::Clique,
                size: 12,
                fault: FaultSpec::None,
            })
            .is_some());
    }

    #[test]
    fn star_protocol_restricted_to_stars() {
        let spec = SweepSpec {
            protocols: vec![ProtocolSpec::Star],
            families: vec![Family::Star, Family::Cycle],
            sizes: vec![8],
            ..SweepSpec::default()
        };
        let cells: Vec<_> = spec.shards().iter().map(|s| s.cell).collect();
        assert!(cells.iter().all(|c| c.family == Family::Star));
        assert!(!cells.is_empty());
    }

    #[test]
    fn ring_variant_restricted_to_cycles() {
        let spec = SweepSpec {
            protocols: vec![ProtocolSpec::RingLoose, ProtocolSpec::Loose],
            families: vec![Family::Cycle, Family::Clique],
            sizes: vec![8],
            ..SweepSpec::default()
        };
        let cells: Vec<_> = spec.shards().iter().map(|s| s.cell).collect();
        assert!(cells
            .iter()
            .all(|c| c.protocol != ProtocolSpec::RingLoose || c.family == Family::Cycle));
        // The general loose protocol sweeps every family.
        assert!(cells
            .iter()
            .any(|c| c.protocol == ProtocolSpec::Loose && c.family == Family::Clique));
        assert!(ProtocolSpec::Loose.is_stabilizing());
        assert!(!ProtocolSpec::Token.is_stabilizing());
    }

    #[test]
    fn clique_count_cells_bypass_the_edge_budget() {
        let spec = SweepSpec::default();
        let cell = |protocol, size, fault| CellSpec {
            protocol,
            family: Family::Clique,
            size,
            fault,
        };
        // Count-capable protocol at count scale: runnable, graph-free.
        let token_big = cell(ProtocolSpec::Token, 100_000_000, FaultSpec::None);
        assert!(spec.cell_is_count(&token_big));
        assert!(spec.cell_skip_reason(&token_big).is_none());
        // Census-incapable protocol at the same scale: skipped, and the
        // reason says why the count tier could not pick it up.
        let id_big = cell(ProtocolSpec::Identifier, 100_000_000, FaultSpec::None);
        assert!(!spec.cell_is_count(&id_big));
        let reason = spec.cell_skip_reason(&id_big).unwrap();
        assert!(reason.contains("not count-engine eligible"), "{reason}");
        // Fault cells need per-agent identity: off the count tier.
        let faulted = cell(ProtocolSpec::Token, 100_000_000, FaultSpec::Corrupt);
        assert!(!spec.cell_is_count(&faulted));
        let reason = spec.cell_skip_reason(&faulted).unwrap();
        assert!(reason.contains("per-agent identity"), "{reason}");
        // Below count scale, cliques obey the plain edge budget …
        let token_mid = cell(ProtocolSpec::Token, 16_000, FaultSpec::None);
        assert!(!spec.cell_is_count(&token_mid));
        let reason = spec.cell_skip_reason(&token_mid).unwrap();
        assert!(!reason.contains("count"), "{reason}");
        // … and small cliques still materialize for the sequential engines.
        let token_small = cell(ProtocolSpec::Token, 2_000, FaultSpec::None);
        assert!(!spec.cell_is_count(&token_small));
        assert!(spec.cell_skip_reason(&token_small).is_none());
        // Non-clique families never take the count tier.
        let cycle_big = CellSpec {
            family: Family::Cycle,
            ..token_big
        };
        assert!(!spec.cell_is_count(&cycle_big));
    }

    #[test]
    fn default_grid_extends_into_the_count_range() {
        let spec = SweepSpec::default();
        assert!(spec.sizes.contains(&10_000_000));
        assert!(spec.sizes.contains(&1_000_000_000));
        assert!(spec.families.contains(&Family::Clique));
        // The big sizes are runnable exactly on the clique count tier.
        let runnable: Vec<_> = spec
            .cells()
            .into_iter()
            .filter(|c| c.size >= 10_000_000 && spec.cell_skip_reason(c).is_none())
            .collect();
        assert!(!runnable.is_empty());
        assert!(runnable
            .iter()
            .all(|c| c.family == Family::Clique && spec.cell_is_count(c)));
    }

    #[test]
    fn name_validation() {
        assert!(SweepSpec::valid_name("sweep"));
        assert!(SweepSpec::valid_name("table1-repro.v2"));
        for bad in ["", ".", "..", "a/b", "a\\b", "../escape"] {
            assert!(!SweepSpec::valid_name(bad), "{bad:?} accepted");
        }
    }

    #[test]
    fn fingerprint_tracks_result_relevant_fields_only() {
        let spec = tiny();
        let mut same_results = tiny();
        same_results.threads = 7;
        same_results.name = "other".into();
        assert_eq!(spec.fingerprint(), same_results.fingerprint());
        let mut different = tiny();
        different.master_seed ^= 1;
        assert_ne!(spec.fingerprint(), different.fingerprint());
    }

    #[test]
    fn fault_labels_roundtrip() {
        for f in FaultSpec::ALL {
            assert_eq!(FaultSpec::parse(f.label()), Some(f));
            assert_eq!(format!("{f}"), f.label());
        }
        assert_eq!(FaultSpec::parse("nope"), None);
    }

    #[test]
    fn fault_axis_extends_cell_keys_but_not_fault_free_ones() {
        let mut cell = CellSpec {
            protocol: ProtocolSpec::Token,
            family: Family::Cycle,
            size: 2000,
            fault: FaultSpec::None,
        };
        // The fault-free key (and therefore its derived seeds) is
        // exactly the pre-fault-axis key.
        assert_eq!(cell.key(), "token/cycle/2000");
        cell.fault = FaultSpec::Corrupt;
        assert_eq!(cell.key(), "token/cycle/2000/corrupt");
    }

    #[test]
    fn default_fault_axis_keeps_the_old_fingerprint_shape() {
        // A fault-free grid's fingerprint must not mention faults, so
        // checkpoints written before the fault axis existed still
        // resume; a faulted grid's must.
        let spec = tiny();
        assert!(!spec.fingerprint().contains("faults"));
        let mut faulted = tiny();
        faulted.faults = vec![FaultSpec::None, FaultSpec::Rewire];
        assert!(faulted.fingerprint().ends_with(";faults=none,rewire"));
        assert_ne!(spec.fingerprint(), faulted.fingerprint());
        // The fault axis multiplies the cell count.
        assert_eq!(faulted.cells().len(), 2 * spec.cells().len());
    }

    #[test]
    fn star_protocol_skips_topology_faults_but_not_corruption() {
        let cell = |fault| CellSpec {
            protocol: ProtocolSpec::Star,
            family: Family::Star,
            size: 8,
            fault,
        };
        let spec = SweepSpec {
            protocols: vec![ProtocolSpec::Star],
            families: vec![Family::Star],
            faults: FaultSpec::ALL.to_vec(),
            ..SweepSpec::default()
        };
        assert!(spec.cell_skip_reason(&cell(FaultSpec::None)).is_none());
        assert!(spec.cell_skip_reason(&cell(FaultSpec::Corrupt)).is_none());
        assert!(spec.cell_skip_reason(&cell(FaultSpec::Churn)).is_some());
        assert!(spec.cell_skip_reason(&cell(FaultSpec::Rewire)).is_some());
    }

    #[test]
    fn fault_profiles_scale_with_n_and_stay_pure() {
        for f in FaultSpec::ALL {
            assert_eq!(f.plan(100), f.plan(100), "{f} not pure");
        }
        assert!(FaultSpec::None.plan(100).is_empty());
        let small = FaultSpec::Corrupt.plan(100);
        let large = FaultSpec::Corrupt.plan(10_000);
        assert!(small.events[0].step < large.events[0].step);
        assert_eq!(FaultSpec::Churn.plan(64).max_joins(), 2);
    }

    #[test]
    fn fault_plan_json_roundtrips() {
        let plan = FaultPlan::at(5, FaultKind::CorruptNodes { count: 3 })
            .and(10, FaultKind::AddEdge)
            .and(15, FaultKind::RemoveEdge)
            .and(20, FaultKind::RewireEdge)
            .and(25, FaultKind::JoinNode { degree: 2 })
            .and(30, FaultKind::LeaveNode);
        let json = fault_plan_to_json(&plan);
        let text = json.render();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(fault_plan_from_json(&reparsed).unwrap(), plan);
        assert_eq!(reparsed.render(), text, "rendering must be byte-stable");
        assert!(fault_plan_from_json(&Json::Null).is_err());
        assert!(
            fault_plan_from_json(&Json::parse(r#"{"events": [{"step": 1}]}"#).unwrap()).is_err()
        );
    }
}
