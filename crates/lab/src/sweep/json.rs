//! Minimal deterministic JSON for sweep checkpoints and summaries.
//!
//! The workspace is hermetic (no serde), so the sweep layer carries its
//! own tiny JSON tree. Two properties matter more than generality:
//!
//! * **Deterministic rendering** — object members keep their insertion
//!   order and numbers render via Rust's shortest-roundtrip float
//!   formatting (integers without a fraction part), so a value tree
//!   always renders to the same bytes. Sweep resume tests assert
//!   checkpoint and summary files are *byte*-identical across
//!   interruptions and thread counts; this is what makes that hold.
//! * **Exact integers** — trial counts, step numbers and edge counts
//!   are `u64`s. Up to 2⁵³ they live in the `f64` payload (where `f64`
//!   is exact); beyond that [`Json::from_u64`] switches to a dedicated
//!   [`Json::Uint`] variant that renders and reparses the full decimal
//!   digits, so even astronomical values — a 10⁹-clique has
//!   ~5·10¹⁷ edges — survive a checkpoint roundtrip bit-exactly
//!   instead of being silently rounded.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// An integer beyond 2⁵³, kept exact as full decimal digits.
    /// Produced only by [`Json::from_u64`] and the parser for values
    /// `f64` cannot represent; smaller integers stay [`Json::Num`] so
    /// every value has exactly one canonical form.
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in the order given.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a `u64` exactly: values up to 2⁵³ as [`Json::Num`] (where
    /// `f64` is exact), larger ones as [`Json::Uint`].
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v <= 1 << 53 {
            Json::Num(v as f64)
        } else {
            Json::Uint(v)
        }
    }

    /// Wraps an optional `u64` as a number or `null`.
    #[must_use]
    pub fn from_opt_u64(v: Option<u64>) -> Self {
        v.map_or(Json::Null, Json::from_u64)
    }

    /// Member of an object, by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(x) => {
                Some(*x as u64)
            }
            Json::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric. A [`Json::Uint`] rounds to the
    /// nearest `f64` — use [`Json::as_u64`] where exactness matters.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Uint(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// line ends, trailing newline). Rendering is a pure function of the
    /// value tree — byte-identical across runs.
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers (JSON cannot represent them).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as compact single-line JSON (no whitespace, no
    /// trailing newline) — the journal-line form: one value per line of
    /// a JSONL file. As deterministic as [`Json::render`] (same number
    /// and string rendering, members in insertion order).
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers (JSON cannot represent them).
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Uint(_) | Json::Str(_) => {
                self.render_into(out, 0);
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(out, k);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}");
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Uint(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with byte offset) on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        // Fast path: copy the run up to the next quote or escape in one
        // go. UTF-8 continuation bytes can never equal `"` or `\`, so a
        // bytewise scan never splits a character.
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            *pos += 1;
        }
        out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            _ => {
                // An escape sequence.
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates are never produced by our writer.
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Plain decimal integers beyond 2⁵³ keep their exact value (the
    // canonical form `Json::from_u64` produces); everything else —
    // signs, fractions, exponents, digits past `u64::MAX` — takes the
    // `f64` path.
    if let Ok(v) = text.parse::<u64>() {
        if v > 1 << 53 {
            return Ok(Json::Uint(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str("sweep \"q\"\n".into())),
            ("seed".into(), Json::from_u64(0xC0FFEE)),
            ("mean".into(), Json::Num(1234.5)),
            ("timeout".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            (
                "steps".into(),
                Json::Arr(vec![Json::from_u64(1), Json::from_opt_u64(None)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ])
    }

    #[test]
    fn roundtrip_preserves_value_and_bytes() {
        let v = sample();
        let text = v.render();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(v, reparsed);
        // Render ∘ parse is the identity on rendered output: the
        // byte-identity guarantee of checkpoint resume rests on this.
        assert_eq!(reparsed.render(), text);
    }

    #[test]
    fn compact_roundtrip_is_single_line() {
        let v = sample();
        let line = v.render_compact();
        // Newlines inside strings stay escaped, so a value never spills
        // past its journal line.
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), v);
        let small = Json::Obj(vec![(
            "a".into(),
            Json::Arr(vec![Json::from_u64(1), Json::Null]),
        )]);
        assert_eq!(small.render_compact(), r#"{"a":[1,null]}"#);
    }

    #[test]
    fn renders_integers_without_fraction() {
        assert_eq!(Json::from_u64(42).render(), "42\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
        assert_eq!(Json::from_u64(1 << 53).as_u64(), Some(1 << 53));
    }

    #[test]
    fn big_integers_stay_exact() {
        // A 10⁹-clique's edge count — the largest integer a default
        // sweep grid writes into a checkpoint — is far beyond 2⁵³.
        let big: u64 = 499_999_999_500_000_000;
        for v in [(1 << 53) + 1, big, u64::MAX] {
            let j = Json::from_u64(v);
            assert_eq!(j, Json::Uint(v));
            assert_eq!(j.as_u64(), Some(v), "{v}");
            let text = j.render();
            assert_eq!(text, format!("{v}\n"));
            assert_eq!(Json::parse(text.trim()).unwrap(), j, "{v}");
        }
        // The canonical split: at and below 2⁵³ the payload stays a
        // `Num`, and the parser reproduces that form.
        assert_eq!(Json::from_u64(1 << 53), Json::Num((1u64 << 53) as f64));
        assert_eq!(
            Json::parse(&format!("{}", 1u64 << 53)).unwrap(),
            Json::from_u64(1 << 53)
        );
        // Digits past `u64::MAX` fall back to the lossy `f64` path
        // rather than erroring out.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Num(_)
        ));
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(0xC0FFEE));
        assert_eq!(v.get("mean").and_then(Json::as_f64), Some(1234.5));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("sweep \"q\"\n"));
        assert_eq!(
            v.get("steps").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_nested_and_unicode() {
        let v = Json::parse(r#"{"a": [1, {"b": "xé\t"}], "c": -2.5e3}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(-2500.0));
        let inner = &v.get("a").and_then(Json::as_arr).unwrap()[1];
        assert_eq!(inner.get("b").and_then(Json::as_str), Some("xé\t"));
    }
}
