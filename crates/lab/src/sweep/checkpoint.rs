//! Resume-safe campaign checkpoints.
//!
//! A [`Checkpoint`] holds every completed shard's trial results plus
//! per-cell graph metadata, keyed by the stable shard/cell keys of
//! [`crate::sweep::spec`]. It is saved after **every** shard (atomically:
//! write to a temp file, then rename), so a killed campaign loses at most
//! the shard in flight. Because shard results are bit-identical to the
//! corresponding slice of an uninterrupted run (per-trial seeds are
//! globally indexed) and serialization is canonical (keys sorted, one
//! deterministic number rendering), the checkpoint an interrupted-then-
//! resumed campaign ends with is *byte*-identical to the one a straight
//! run writes — the resume test asserts exactly that.

use super::json::Json;
use super::spec::SweepSpec;
use popele_engine::faults::Recovery;
use popele_engine::monte_carlo::TrialResult;
use popele_engine::stabilize::HoldingTime;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Recovery metrics of one fault-injected trial, as persisted (a
/// field-for-field mirror of [`Recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Step of the last applied fault.
    pub last_fault_step: u64,
    /// Faults actually applied.
    pub faults_applied: u32,
    /// Steps from the last fault to renewed stability (`None`: budget
    /// ran out first).
    pub reconvergence: Option<u64>,
    /// Peak leader count observed at fault boundaries / run end.
    pub peak_leaders: u32,
    /// Leader count at the end of the run.
    pub final_leaders: u32,
    /// The run ended unstable with zero leader outputs.
    pub leader_lost: bool,
}

impl From<Recovery> for RecoveryRecord {
    fn from(r: Recovery) -> Self {
        Self {
            last_fault_step: r.last_fault_step,
            faults_applied: r.faults_applied,
            reconvergence: r.reconvergence_steps,
            peak_leaders: r.peak_leaders,
            final_leaders: r.final_leaders,
            leader_lost: r.leader_lost,
        }
    }
}

/// Loose-stabilization metrics of one arbitrarily-initialized trial,
/// as persisted (the election step itself lives in
/// [`TrialRecord::steps`], so only the holding phase is mirrored from
/// [`HoldingTime`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoldingRecord {
    /// Steps the unique-leader configuration held before its first
    /// violation; `None` when no violation was observed.
    pub hold: Option<u64>,
    /// The hold was still intact when the step budget ran out
    /// (right-censored).
    pub held_to_budget: bool,
}

impl From<HoldingTime> for HoldingRecord {
    fn from(h: HoldingTime) -> Self {
        Self {
            hold: h.hold_steps,
            held_to_budget: h.held_to_budget,
        }
    }
}

/// Result of one trial, as persisted.
///
/// The census is never enabled in sweeps, so only the stabilization
/// step (or timeout), the elected leader and — for faulted cells — the
/// recovery metrics are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Global trial index within the cell.
    pub trial: usize,
    /// Stabilization step; `None` records a budget timeout. For
    /// stabilizing cells this is the *election* step from the trial's
    /// arbitrary start configuration.
    pub steps: Option<u64>,
    /// Elected leader, when one was stable at the end.
    pub leader: Option<u32>,
    /// Recovery metrics, for trials run under a nonempty fault plan.
    /// Rendered (and parsed) only when present, so fault-free
    /// checkpoints keep their exact pre-fault-axis byte format.
    pub recovery: Option<RecoveryRecord>,
    /// Holding metrics, for self-stabilization trials (arbitrary
    /// starts). Rendered only when present, so pre-existing
    /// checkpoints keep their exact byte format and still resume.
    pub holding: Option<HoldingRecord>,
}

impl From<&TrialResult> for TrialRecord {
    fn from(r: &TrialResult) -> Self {
        Self {
            trial: r.trial,
            steps: r.stabilization_step,
            leader: r.leader,
            recovery: r.recovery.map(Into::into),
            holding: r.holding.map(Into::into),
        }
    }
}

/// Graph metadata of a cell, recorded when its first shard runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellMeta {
    /// Actual node count (families may round the nominal size).
    pub n: u32,
    /// Edge count.
    pub m: u64,
}

/// Persistent state of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the producing [`SweepSpec`]; loading under a
    /// different fingerprint is refused.
    pub fingerprint: String,
    /// Completed shards: shard key → trial records (ascending trials).
    pub shards: BTreeMap<String, Vec<TrialRecord>>,
    /// Cell key → graph metadata.
    pub cells: BTreeMap<String, CellMeta>,
}

impl Checkpoint {
    /// Empty checkpoint for a spec.
    #[must_use]
    pub fn new(spec: &SweepSpec) -> Self {
        Self {
            fingerprint: spec.fingerprint(),
            shards: BTreeMap::new(),
            cells: BTreeMap::new(),
        }
    }

    /// Canonical JSON rendering (sorted keys; a pure function of the
    /// contents).
    #[must_use]
    pub fn render(&self) -> String {
        let shards = self
            .shards
            .iter()
            .map(|(key, records)| {
                let rows = records.iter().map(record_to_json).collect();
                (key.clone(), Json::Arr(rows))
            })
            .collect();
        let cells = self
            .cells
            .iter()
            .map(|(key, meta)| {
                (
                    key.clone(),
                    Json::Obj(vec![
                        ("n".into(), Json::from_u64(u64::from(meta.n))),
                        ("m".into(), Json::from_u64(meta.m)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
            ("cells".into(), Json::Obj(cells)),
            ("shards".into(), Json::Obj(shards)),
        ])
        .render()
    }

    /// Parses a rendered checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/mistyped field.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let fingerprint = root
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let mut cells = BTreeMap::new();
        if let Some(Json::Obj(members)) = root.get("cells") {
            for (key, meta) in members {
                let n = meta
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing n")?;
                let m = meta
                    .get("m")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing m")?;
                cells.insert(
                    key.clone(),
                    CellMeta {
                        n: u32::try_from(n).map_err(|e| e.to_string())?,
                        m,
                    },
                );
            }
        }
        let mut shards = BTreeMap::new();
        if let Some(Json::Obj(members)) = root.get("shards") {
            for (key, rows) in members {
                let rows = rows.as_arr().ok_or("shard records must be an array")?;
                let records = rows
                    .iter()
                    .map(record_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                shards.insert(key.clone(), records);
            }
        }
        Ok(Self {
            fingerprint,
            shards,
            cells,
        })
    }

    /// Loads a checkpoint from disk.
    ///
    /// # Errors
    ///
    /// I/O errors propagate; parse errors surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Atomically writes the checkpoint (temp file + rename), so a kill
    /// mid-save never corrupts the previous checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.render())?;
        std::fs::rename(&tmp, path)
    }

    /// Merges one journal entry into the checkpoint — the replay step
    /// of journaled checkpointing. Idempotent: re-applying an entry a
    /// compaction already folded in rewrites the same key with the same
    /// value, which is what makes a crash *between* compacting and
    /// clearing the journal harmless.
    pub fn apply_entry(&mut self, entry: &JournalEntry) {
        self.cells.insert(entry.cell_key.clone(), entry.meta);
        self.shards
            .insert(entry.shard_key.clone(), entry.records.clone());
    }

    /// All records of a cell, in ascending trial order, assembled from
    /// its shards.
    #[must_use]
    pub fn cell_records(&self, cell_key: &str) -> Vec<TrialRecord> {
        let prefix = format!("{cell_key}/s");
        let mut records: Vec<TrialRecord> = self
            .shards
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .flat_map(|(_, rs)| rs.iter().copied())
            .collect();
        records.sort_by_key(|r| r.trial);
        records
    }
}

/// One trial record as a JSON object — the row format shared by the
/// canonical checkpoint and the journal lines. The optional recovery
/// and holding objects are appended only when present, so fault-free
/// checkpoints keep their exact pre-fault-axis byte format.
fn record_to_json(r: &TrialRecord) -> Json {
    let mut members = vec![
        ("trial".into(), Json::from_u64(r.trial as u64)),
        ("steps".into(), Json::from_opt_u64(r.steps)),
        ("leader".into(), Json::from_opt_u64(r.leader.map(u64::from))),
    ];
    if let Some(rec) = &r.recovery {
        members.push((
            "recovery".into(),
            Json::Obj(vec![
                (
                    "last_fault_step".into(),
                    Json::from_u64(rec.last_fault_step),
                ),
                (
                    "faults_applied".into(),
                    Json::from_u64(u64::from(rec.faults_applied)),
                ),
                (
                    "reconvergence".into(),
                    Json::from_opt_u64(rec.reconvergence),
                ),
                (
                    "peak_leaders".into(),
                    Json::from_u64(u64::from(rec.peak_leaders)),
                ),
                (
                    "final_leaders".into(),
                    Json::from_u64(u64::from(rec.final_leaders)),
                ),
                ("leader_lost".into(), Json::Bool(rec.leader_lost)),
            ]),
        ));
    }
    if let Some(h) = &r.holding {
        members.push((
            "holding".into(),
            Json::Obj(vec![
                ("hold".into(), Json::from_opt_u64(h.hold)),
                ("held_to_budget".into(), Json::Bool(h.held_to_budget)),
            ]),
        ));
    }
    Json::Obj(members)
}

/// Parses one trial-record row (the inverse of [`record_to_json`]).
fn record_from_json(row: &Json) -> Result<TrialRecord, String> {
    let trial = row
        .get("trial")
        .and_then(Json::as_u64)
        .ok_or("record missing trial")?;
    let steps = match row.get("steps") {
        Some(Json::Null) | None => None,
        Some(v) => Some(v.as_u64().ok_or("steps must be an integer")?),
    };
    let leader = match row.get("leader") {
        Some(Json::Null) | None => None,
        Some(v) => {
            let raw = v.as_u64().ok_or("leader must be an integer")?;
            Some(u32::try_from(raw).map_err(|e| e.to_string())?)
        }
    };
    let recovery = match row.get("recovery") {
        Some(Json::Null) | None => None,
        Some(rec) => {
            let u64_field = |name: &str| {
                rec.get(name)
                    .and_then(Json::as_u64)
                    .ok_or(format!("recovery missing {name}"))
            };
            let u32_field = |name: &str| -> Result<u32, String> {
                u32::try_from(u64_field(name)?).map_err(|e| e.to_string())
            };
            let reconvergence = match rec.get("reconvergence") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("reconvergence must be an integer")?),
            };
            let leader_lost = match rec.get("leader_lost") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("recovery missing leader_lost".into()),
            };
            Some(RecoveryRecord {
                last_fault_step: u64_field("last_fault_step")?,
                faults_applied: u32_field("faults_applied")?,
                reconvergence,
                peak_leaders: u32_field("peak_leaders")?,
                final_leaders: u32_field("final_leaders")?,
                leader_lost,
            })
        }
    };
    let holding = match row.get("holding") {
        Some(Json::Null) | None => None,
        Some(h) => {
            let hold = match h.get("hold") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("hold must be an integer")?),
            };
            let held_to_budget = match h.get("held_to_budget") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("holding missing held_to_budget".into()),
            };
            Some(HoldingRecord {
                hold,
                held_to_budget,
            })
        }
    };
    Ok(TrialRecord {
        trial: trial as usize,
        steps,
        leader,
        recovery,
        holding,
    })
}

/// One completed shard as journaled: everything [`Checkpoint::apply_entry`]
/// needs to reconstruct the checkpoint's view of that shard.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Stable shard key (`cell/sN`).
    pub shard_key: String,
    /// Stable key of the cell the shard belongs to.
    pub cell_key: String,
    /// Graph metadata of the cell (re-journaled with every shard; tiny,
    /// and it keeps each line self-contained).
    pub meta: CellMeta,
    /// Trial records of the shard (ascending trials).
    pub records: Vec<TrialRecord>,
}

impl JournalEntry {
    /// Renders the entry as one compact JSONL line (no trailing
    /// newline). Deterministic, like the checkpoint rendering.
    #[must_use]
    pub fn render_line(&self) -> String {
        Json::Obj(vec![
            ("shard".into(), Json::Str(self.shard_key.clone())),
            ("cell".into(), Json::Str(self.cell_key.clone())),
            ("n".into(), Json::from_u64(u64::from(self.meta.n))),
            ("m".into(), Json::from_u64(self.meta.m)),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(record_to_json).collect()),
            ),
        ])
        .render_compact()
    }

    /// Parses one journal line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/mistyped field.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let root = Json::parse(line)?;
        let shard_key = root
            .get("shard")
            .and_then(Json::as_str)
            .ok_or("journal entry missing shard")?
            .to_string();
        let cell_key = root
            .get("cell")
            .and_then(Json::as_str)
            .ok_or("journal entry missing cell")?
            .to_string();
        let n = root
            .get("n")
            .and_then(Json::as_u64)
            .ok_or("journal entry missing n")?;
        let m = root
            .get("m")
            .and_then(Json::as_u64)
            .ok_or("journal entry missing m")?;
        let records = root
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("journal entry missing records")?
            .iter()
            .map(record_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            shard_key,
            cell_key,
            meta: CellMeta {
                n: u32::try_from(n).map_err(|e| e.to_string())?,
                m,
            },
            records,
        })
    }
}

/// Append-only shard journal (`checkpoint.log`), the O(shard) half of
/// journaled checkpointing.
///
/// The file is JSONL: a header line carrying the campaign fingerprint,
/// then one [`JournalEntry`] line per completed shard. Completing a
/// shard appends one line (and flushes) instead of rewriting the whole
/// `checkpoint.json`; a periodic *compaction* folds the journal into
/// the canonical checkpoint ([`Checkpoint::save`]) and [`Journal::clear`]s
/// the file. On load, surviving lines are replayed through
/// [`Checkpoint::apply_entry`], which keeps resume byte-exact.
///
/// Crash story: a kill mid-append can leave a truncated last line —
/// [`Journal::open`] drops exactly that line (the shard in flight, same
/// loss as the pre-journal design) and rewrites the file; a kill
/// between compaction's save and clear leaves already-folded entries in
/// the journal, which replay idempotently. A malformed line *before* a
/// valid one is real corruption and is refused.
#[derive(Debug)]
pub struct Journal {
    path: std::path::PathBuf,
    file: std::fs::File,
    entries: usize,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for a campaign with
    /// `fingerprint`, returning the journal and the entries that
    /// survive from a previous run, in file order.
    ///
    /// # Errors
    ///
    /// I/O errors propagate. A header fingerprint mismatch and
    /// mid-file corruption surface as [`io::ErrorKind::InvalidData`]
    /// (mirroring the checkpoint's fingerprint policy).
    pub fn open(path: &Path, fingerprint: &str) -> io::Result<(Self, Vec<JournalEntry>)> {
        let invalid = |e: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        };
        let mut entries = Vec::new();
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut lines = text.split_inclusive('\n');
            match lines.next() {
                Some(header) if header.ends_with('\n') => {
                    let header = Json::parse(header).map_err(&invalid)?;
                    let found = header.get("fingerprint").and_then(Json::as_str);
                    if found != Some(fingerprint) {
                        return Err(invalid(format!(
                            "journal fingerprint {found:?} does not match the campaign"
                        )));
                    }
                }
                // A header without its newline is a kill during journal
                // creation: nothing was journaled yet, start over.
                _ => lines = "".split_inclusive('\n'),
            }
            for line in lines {
                match line.strip_suffix('\n') {
                    Some(complete) => entries.push(
                        JournalEntry::from_line(complete)
                            .map_err(|e| invalid(format!("corrupt journal line: {e}")))?,
                    ),
                    // An unterminated tail is the append in flight when
                    // the previous run died; drop it. (A malformed
                    // *terminated* line above is refused instead.)
                    None => break,
                }
            }
        }
        // Rewrite rather than append-after-truncation: this atomically
        // discards any dropped tail and recreates a missing or
        // headerless file.
        let mut journal = Self::create(path, fingerprint)?;
        for entry in &entries {
            journal.append(entry)?;
        }
        Ok((journal, entries))
    }

    /// Creates a fresh journal containing only the header line
    /// (atomically: temp file + rename, like [`Checkpoint::save`]).
    fn create(path: &Path, fingerprint: &str) -> io::Result<Self> {
        let tmp = path.with_extension("log.tmp");
        let header = Json::Obj(vec![(
            "fingerprint".into(),
            Json::Str(fingerprint.to_string()),
        )])
        .render_compact();
        std::fs::write(&tmp, format!("{header}\n"))?;
        std::fs::rename(&tmp, path)?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            entries: 0,
        })
    }

    /// Appends one completed shard and flushes — the O(shard) save.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        use std::io::Write as _;
        let mut line = entry.render_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.entries += 1;
        Ok(())
    }

    /// Entries currently in the journal (i.e. appended since the last
    /// compaction, plus any replayed at open).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the journal holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Empties the journal back to its header line — called right after
    /// a compaction folded the entries into `checkpoint.json`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn clear(&mut self, fingerprint: &str) -> io::Result<()> {
        let fresh = Self::create(&self.path, fingerprint)?;
        *self = fresh;
        Ok(())
    }

    /// Removes the journal file entirely — called when a campaign
    /// completes and the canonical checkpoint is the whole story.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (a missing file is fine).
    pub fn remove(self) -> io::Result<()> {
        match std::fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let spec = SweepSpec::default();
        let mut ck = Checkpoint::new(&spec);
        ck.cells
            .insert("token/cycle/2000".into(), CellMeta { n: 2000, m: 2000 });
        ck.shards.insert(
            "token/cycle/2000/s0".into(),
            vec![
                TrialRecord {
                    trial: 0,
                    steps: Some(123_456),
                    leader: Some(17),
                    recovery: None,
                    holding: Some(HoldingRecord {
                        hold: Some(9_999),
                        held_to_budget: false,
                    }),
                },
                TrialRecord {
                    trial: 1,
                    steps: None,
                    leader: None,
                    recovery: Some(RecoveryRecord {
                        last_fault_step: 9_000,
                        faults_applied: 3,
                        reconvergence: None,
                        peak_leaders: 7,
                        final_leaders: 0,
                        leader_lost: true,
                    }),
                    holding: Some(HoldingRecord {
                        hold: None,
                        held_to_budget: true,
                    }),
                },
            ],
        );
        ck.shards.insert(
            "token/cycle/2000/s1".into(),
            vec![TrialRecord {
                trial: 2,
                steps: Some(99),
                leader: Some(0),
                recovery: Some(RecoveryRecord {
                    last_fault_step: 10,
                    faults_applied: 1,
                    reconvergence: Some(89),
                    peak_leaders: 4,
                    final_leaders: 1,
                    leader_lost: false,
                }),
                holding: None,
            }],
        );
        ck
    }

    #[test]
    fn roundtrip_is_lossless_and_byte_stable() {
        let ck = sample();
        let text = ck.render();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(ck, back);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn cell_records_merge_shards_in_trial_order() {
        let ck = sample();
        let records = ck.cell_records("token/cycle/2000");
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.trial).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // A prefix of another cell key must not leak in.
        assert!(ck.cell_records("token/cycle/200").is_empty());
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("popele-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn entries() -> Vec<JournalEntry> {
        let ck = sample();
        ck.shards
            .iter()
            .map(|(key, records)| JournalEntry {
                shard_key: key.clone(),
                cell_key: "token/cycle/2000".into(),
                meta: ck.cells["token/cycle/2000"],
                records: records.clone(),
            })
            .collect()
    }

    #[test]
    fn journal_entry_line_roundtrip() {
        for entry in entries() {
            let line = entry.render_line();
            assert!(!line.contains('\n'));
            assert_eq!(JournalEntry::from_line(&line).unwrap(), entry);
        }
    }

    #[test]
    fn journal_replay_reconstructs_checkpoint() {
        let dir = std::env::temp_dir().join("popele-journal-replay");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.log");
        let reference = sample();

        let (mut journal, replayed) = Journal::open(&path, &reference.fingerprint).unwrap();
        assert!(replayed.is_empty());
        for entry in entries() {
            journal.append(&entry).unwrap();
        }
        assert_eq!(journal.len(), 2);
        drop(journal);

        // Reopen: every appended entry survives, and replaying them into
        // an empty checkpoint reconstructs the reference byte for byte.
        let (journal, replayed) = Journal::open(&path, &reference.fingerprint).unwrap();
        assert_eq!(journal.len(), 2);
        let mut rebuilt = Checkpoint {
            fingerprint: reference.fingerprint.clone(),
            shards: BTreeMap::new(),
            cells: BTreeMap::new(),
        };
        for entry in &replayed {
            rebuilt.apply_entry(entry);
        }
        assert_eq!(rebuilt.render(), reference.render());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_drops_truncated_tail_and_refuses_mid_file_corruption() {
        let dir = std::env::temp_dir().join("popele-journal-tail");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.log");
        let fp = sample().fingerprint;
        let all = entries();

        let (mut journal, _) = Journal::open(&path, &fp).unwrap();
        for entry in &all {
            journal.append(entry).unwrap();
        }
        drop(journal);

        // Simulate a kill mid-append: chop the file inside its last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let (journal, replayed) = Journal::open(&path, &fp).unwrap();
        assert_eq!(replayed.len(), all.len() - 1);
        assert_eq!(replayed, all[..all.len() - 1]);
        assert_eq!(journal.len(), all.len() - 1);
        drop(journal);
        // The rewrite discarded the partial tail on disk too.
        let rewritten = std::fs::read_to_string(&path).unwrap();
        assert!(rewritten.ends_with('\n'));
        assert_eq!(rewritten.lines().count(), all.len());

        // A malformed line *before* a valid one is corruption, not a
        // tail, and must be refused.
        let mut lines: Vec<&str> = rewritten.lines().collect();
        lines.insert(1, "{\"shard\": 12}");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = Journal::open(&path, &fp).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_refuses_foreign_fingerprint_and_clears_to_header() {
        let dir = std::env::temp_dir().join("popele-journal-fp");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.log");

        let (mut journal, _) = Journal::open(&path, "v1;real").unwrap();
        for entry in entries() {
            journal.append(&entry).unwrap();
        }
        let err = Journal::open(&path, "v1;other").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        journal.clear("v1;real").unwrap();
        assert!(journal.is_empty());
        let (journal, replayed) = Journal::open(&path, "v1;real").unwrap();
        assert!(replayed.is_empty());
        journal.remove().unwrap();
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_checkpoint_is_invalid_data() {
        let dir = std::env::temp_dir().join("popele-checkpoint-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        std::fs::write(&path, "{\"fingerprint\": 3}").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
