//! Resume-safe campaign checkpoints.
//!
//! A [`Checkpoint`] holds every completed shard's trial results plus
//! per-cell graph metadata, keyed by the stable shard/cell keys of
//! [`crate::sweep::spec`]. It is saved after **every** shard (atomically:
//! write to a temp file, then rename), so a killed campaign loses at most
//! the shard in flight. Because shard results are bit-identical to the
//! corresponding slice of an uninterrupted run (per-trial seeds are
//! globally indexed) and serialization is canonical (keys sorted, one
//! deterministic number rendering), the checkpoint an interrupted-then-
//! resumed campaign ends with is *byte*-identical to the one a straight
//! run writes — the resume test asserts exactly that.

use super::json::Json;
use super::spec::SweepSpec;
use popele_engine::faults::Recovery;
use popele_engine::monte_carlo::TrialResult;
use popele_engine::stabilize::HoldingTime;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Recovery metrics of one fault-injected trial, as persisted (a
/// field-for-field mirror of [`Recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Step of the last applied fault.
    pub last_fault_step: u64,
    /// Faults actually applied.
    pub faults_applied: u32,
    /// Steps from the last fault to renewed stability (`None`: budget
    /// ran out first).
    pub reconvergence: Option<u64>,
    /// Peak leader count observed at fault boundaries / run end.
    pub peak_leaders: u32,
    /// Leader count at the end of the run.
    pub final_leaders: u32,
    /// The run ended unstable with zero leader outputs.
    pub leader_lost: bool,
}

impl From<Recovery> for RecoveryRecord {
    fn from(r: Recovery) -> Self {
        Self {
            last_fault_step: r.last_fault_step,
            faults_applied: r.faults_applied,
            reconvergence: r.reconvergence_steps,
            peak_leaders: r.peak_leaders,
            final_leaders: r.final_leaders,
            leader_lost: r.leader_lost,
        }
    }
}

/// Loose-stabilization metrics of one arbitrarily-initialized trial,
/// as persisted (the election step itself lives in
/// [`TrialRecord::steps`], so only the holding phase is mirrored from
/// [`HoldingTime`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoldingRecord {
    /// Steps the unique-leader configuration held before its first
    /// violation; `None` when no violation was observed.
    pub hold: Option<u64>,
    /// The hold was still intact when the step budget ran out
    /// (right-censored).
    pub held_to_budget: bool,
}

impl From<HoldingTime> for HoldingRecord {
    fn from(h: HoldingTime) -> Self {
        Self {
            hold: h.hold_steps,
            held_to_budget: h.held_to_budget,
        }
    }
}

/// Result of one trial, as persisted.
///
/// The census is never enabled in sweeps, so only the stabilization
/// step (or timeout), the elected leader and — for faulted cells — the
/// recovery metrics are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Global trial index within the cell.
    pub trial: usize,
    /// Stabilization step; `None` records a budget timeout. For
    /// stabilizing cells this is the *election* step from the trial's
    /// arbitrary start configuration.
    pub steps: Option<u64>,
    /// Elected leader, when one was stable at the end.
    pub leader: Option<u32>,
    /// Recovery metrics, for trials run under a nonempty fault plan.
    /// Rendered (and parsed) only when present, so fault-free
    /// checkpoints keep their exact pre-fault-axis byte format.
    pub recovery: Option<RecoveryRecord>,
    /// Holding metrics, for self-stabilization trials (arbitrary
    /// starts). Rendered only when present, so pre-existing
    /// checkpoints keep their exact byte format and still resume.
    pub holding: Option<HoldingRecord>,
}

impl From<&TrialResult> for TrialRecord {
    fn from(r: &TrialResult) -> Self {
        Self {
            trial: r.trial,
            steps: r.stabilization_step,
            leader: r.leader,
            recovery: r.recovery.map(Into::into),
            holding: r.holding.map(Into::into),
        }
    }
}

/// Graph metadata of a cell, recorded when its first shard runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellMeta {
    /// Actual node count (families may round the nominal size).
    pub n: u32,
    /// Edge count.
    pub m: u64,
}

/// Persistent state of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the producing [`SweepSpec`]; loading under a
    /// different fingerprint is refused.
    pub fingerprint: String,
    /// Completed shards: shard key → trial records (ascending trials).
    pub shards: BTreeMap<String, Vec<TrialRecord>>,
    /// Cell key → graph metadata.
    pub cells: BTreeMap<String, CellMeta>,
}

impl Checkpoint {
    /// Empty checkpoint for a spec.
    #[must_use]
    pub fn new(spec: &SweepSpec) -> Self {
        Self {
            fingerprint: spec.fingerprint(),
            shards: BTreeMap::new(),
            cells: BTreeMap::new(),
        }
    }

    /// Canonical JSON rendering (sorted keys; a pure function of the
    /// contents).
    #[must_use]
    pub fn render(&self) -> String {
        let shards = self
            .shards
            .iter()
            .map(|(key, records)| {
                let rows = records
                    .iter()
                    .map(|r| {
                        let mut members = vec![
                            ("trial".into(), Json::from_u64(r.trial as u64)),
                            ("steps".into(), Json::from_opt_u64(r.steps)),
                            ("leader".into(), Json::from_opt_u64(r.leader.map(u64::from))),
                        ];
                        if let Some(rec) = &r.recovery {
                            members.push((
                                "recovery".into(),
                                Json::Obj(vec![
                                    (
                                        "last_fault_step".into(),
                                        Json::from_u64(rec.last_fault_step),
                                    ),
                                    (
                                        "faults_applied".into(),
                                        Json::from_u64(u64::from(rec.faults_applied)),
                                    ),
                                    (
                                        "reconvergence".into(),
                                        Json::from_opt_u64(rec.reconvergence),
                                    ),
                                    (
                                        "peak_leaders".into(),
                                        Json::from_u64(u64::from(rec.peak_leaders)),
                                    ),
                                    (
                                        "final_leaders".into(),
                                        Json::from_u64(u64::from(rec.final_leaders)),
                                    ),
                                    ("leader_lost".into(), Json::Bool(rec.leader_lost)),
                                ]),
                            ));
                        }
                        if let Some(h) = &r.holding {
                            members.push((
                                "holding".into(),
                                Json::Obj(vec![
                                    ("hold".into(), Json::from_opt_u64(h.hold)),
                                    ("held_to_budget".into(), Json::Bool(h.held_to_budget)),
                                ]),
                            ));
                        }
                        Json::Obj(members)
                    })
                    .collect();
                (key.clone(), Json::Arr(rows))
            })
            .collect();
        let cells = self
            .cells
            .iter()
            .map(|(key, meta)| {
                (
                    key.clone(),
                    Json::Obj(vec![
                        ("n".into(), Json::from_u64(u64::from(meta.n))),
                        ("m".into(), Json::from_u64(meta.m)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("fingerprint".into(), Json::Str(self.fingerprint.clone())),
            ("cells".into(), Json::Obj(cells)),
            ("shards".into(), Json::Obj(shards)),
        ])
        .render()
    }

    /// Parses a rendered checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/mistyped field.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let fingerprint = root
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing fingerprint")?
            .to_string();
        let mut cells = BTreeMap::new();
        if let Some(Json::Obj(members)) = root.get("cells") {
            for (key, meta) in members {
                let n = meta
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing n")?;
                let m = meta
                    .get("m")
                    .and_then(Json::as_u64)
                    .ok_or("cell missing m")?;
                cells.insert(
                    key.clone(),
                    CellMeta {
                        n: u32::try_from(n).map_err(|e| e.to_string())?,
                        m,
                    },
                );
            }
        }
        let mut shards = BTreeMap::new();
        if let Some(Json::Obj(members)) = root.get("shards") {
            for (key, rows) in members {
                let rows = rows.as_arr().ok_or("shard records must be an array")?;
                let mut records = Vec::with_capacity(rows.len());
                for row in rows {
                    let trial = row
                        .get("trial")
                        .and_then(Json::as_u64)
                        .ok_or("record missing trial")?;
                    let steps = match row.get("steps") {
                        Some(Json::Null) | None => None,
                        Some(v) => Some(v.as_u64().ok_or("steps must be an integer")?),
                    };
                    let leader = match row.get("leader") {
                        Some(Json::Null) | None => None,
                        Some(v) => {
                            let raw = v.as_u64().ok_or("leader must be an integer")?;
                            Some(u32::try_from(raw).map_err(|e| e.to_string())?)
                        }
                    };
                    let recovery = match row.get("recovery") {
                        Some(Json::Null) | None => None,
                        Some(rec) => {
                            let u64_field = |name: &str| {
                                rec.get(name)
                                    .and_then(Json::as_u64)
                                    .ok_or(format!("recovery missing {name}"))
                            };
                            let u32_field = |name: &str| -> Result<u32, String> {
                                u32::try_from(u64_field(name)?).map_err(|e| e.to_string())
                            };
                            let reconvergence = match rec.get("reconvergence") {
                                Some(Json::Null) | None => None,
                                Some(v) => {
                                    Some(v.as_u64().ok_or("reconvergence must be an integer")?)
                                }
                            };
                            let leader_lost = match rec.get("leader_lost") {
                                Some(Json::Bool(b)) => *b,
                                _ => return Err("recovery missing leader_lost".into()),
                            };
                            Some(RecoveryRecord {
                                last_fault_step: u64_field("last_fault_step")?,
                                faults_applied: u32_field("faults_applied")?,
                                reconvergence,
                                peak_leaders: u32_field("peak_leaders")?,
                                final_leaders: u32_field("final_leaders")?,
                                leader_lost,
                            })
                        }
                    };
                    let holding = match row.get("holding") {
                        Some(Json::Null) | None => None,
                        Some(h) => {
                            let hold = match h.get("hold") {
                                Some(Json::Null) | None => None,
                                Some(v) => Some(v.as_u64().ok_or("hold must be an integer")?),
                            };
                            let held_to_budget = match h.get("held_to_budget") {
                                Some(Json::Bool(b)) => *b,
                                _ => return Err("holding missing held_to_budget".into()),
                            };
                            Some(HoldingRecord {
                                hold,
                                held_to_budget,
                            })
                        }
                    };
                    records.push(TrialRecord {
                        trial: trial as usize,
                        steps,
                        leader,
                        recovery,
                        holding,
                    });
                }
                shards.insert(key.clone(), records);
            }
        }
        Ok(Self {
            fingerprint,
            shards,
            cells,
        })
    }

    /// Loads a checkpoint from disk.
    ///
    /// # Errors
    ///
    /// I/O errors propagate; parse errors surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Atomically writes the checkpoint (temp file + rename), so a kill
    /// mid-save never corrupts the previous checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.render())?;
        std::fs::rename(&tmp, path)
    }

    /// All records of a cell, in ascending trial order, assembled from
    /// its shards.
    #[must_use]
    pub fn cell_records(&self, cell_key: &str) -> Vec<TrialRecord> {
        let prefix = format!("{cell_key}/s");
        let mut records: Vec<TrialRecord> = self
            .shards
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .flat_map(|(_, rs)| rs.iter().copied())
            .collect();
        records.sort_by_key(|r| r.trial);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let spec = SweepSpec::default();
        let mut ck = Checkpoint::new(&spec);
        ck.cells
            .insert("token/cycle/2000".into(), CellMeta { n: 2000, m: 2000 });
        ck.shards.insert(
            "token/cycle/2000/s0".into(),
            vec![
                TrialRecord {
                    trial: 0,
                    steps: Some(123_456),
                    leader: Some(17),
                    recovery: None,
                    holding: Some(HoldingRecord {
                        hold: Some(9_999),
                        held_to_budget: false,
                    }),
                },
                TrialRecord {
                    trial: 1,
                    steps: None,
                    leader: None,
                    recovery: Some(RecoveryRecord {
                        last_fault_step: 9_000,
                        faults_applied: 3,
                        reconvergence: None,
                        peak_leaders: 7,
                        final_leaders: 0,
                        leader_lost: true,
                    }),
                    holding: Some(HoldingRecord {
                        hold: None,
                        held_to_budget: true,
                    }),
                },
            ],
        );
        ck.shards.insert(
            "token/cycle/2000/s1".into(),
            vec![TrialRecord {
                trial: 2,
                steps: Some(99),
                leader: Some(0),
                recovery: Some(RecoveryRecord {
                    last_fault_step: 10,
                    faults_applied: 1,
                    reconvergence: Some(89),
                    peak_leaders: 4,
                    final_leaders: 1,
                    leader_lost: false,
                }),
                holding: None,
            }],
        );
        ck
    }

    #[test]
    fn roundtrip_is_lossless_and_byte_stable() {
        let ck = sample();
        let text = ck.render();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(ck, back);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn cell_records_merge_shards_in_trial_order() {
        let ck = sample();
        let records = ck.cell_records("token/cycle/2000");
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.trial).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // A prefix of another cell key must not leak in.
        assert!(ck.cell_records("token/cycle/200").is_empty());
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("popele-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_checkpoint_is_invalid_data() {
        let dir = std::env::temp_dir().join("popele-checkpoint-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        std::fs::write(&path, "{\"fingerprint\": 3}").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
