//! Sweep campaigns: sharded Monte-Carlo grids over protocols × graph
//! families × sizes.
//!
//! The paper's headline results (Table 1, Theorems 16/21/24) are
//! statements about how stabilization time scales across *graph
//! families*. This module makes such cross-family measurements cheap:
//! declare a grid once ([`SweepSpec`]), run it with checkpointed,
//! resume-safe sharding ([`run_campaign`]), and get per-cell statistics
//! plus fitted scaling exponents ([`summary`]) as deterministic JSON and
//! CSV under `results/<name>/`. Grids carry a fourth, *adversity* axis:
//! [`FaultSpec`] profiles (state corruption, node churn, edge rewiring —
//! see [`popele_engine::faults`]) sweep fault intensity alongside
//! protocol × family × size, and faulted cells additionally record
//! recovery metrics (reconvergence time after the last fault, lost
//! leaders, peak leader-count excursions).
//!
//! # Reproducibility contract
//!
//! For a fixed spec (grid + master seed + step budget), the campaign's
//! `checkpoint.json` and `summary.json` are **byte-identical**:
//!
//! * across thread counts (per-trial seeds are derived, not consumed in
//!   execution order);
//! * across engines (the compiled dense engine is trace-identical to the
//!   generic one; [`popele_engine::monte_carlo::run_trials_auto`] picks
//!   freely);
//! * across interruptions — kill the process after any shard, rerun the
//!   same command, and the completed campaign's outputs match an
//!   uninterrupted run byte for byte (`tests/sweep_resume.rs` asserts
//!   this);
//! * across grid edits that don't touch a cell: a cell's trial seeds
//!   derive from its *key* (`token/cycle/2000`), so adding a protocol or
//!   size never silently changes existing cells' numbers;
//! * under fault injection: faulted cells (keys like
//!   `token/cycle/2000/corrupt`) derive their per-trial fault
//!   realizations from their trial seeds, so every guarantee above
//!   extends verbatim to grids with a nonzero fault axis (also asserted
//!   by `tests/sweep_resume.rs`).
//!
//! # Example
//!
//! ```
//! use popele_lab::sweep::{run_campaign, CampaignOptions, ProtocolSpec, SweepSpec};
//! use popele_lab::workloads::Family;
//!
//! let spec = SweepSpec {
//!     name: "doc-example".into(),
//!     protocols: vec![ProtocolSpec::Token],
//!     families: vec![Family::Clique, Family::Cycle],
//!     sizes: vec![8, 16],
//!     trials_per_cell: 2,
//!     shard_trials: 1,
//!     max_steps: 1 << 22,
//!     ..SweepSpec::default()
//! };
//! let out_dir = std::env::temp_dir().join("popele-sweep-doc");
//! # std::fs::remove_dir_all(&out_dir).ok();
//! let outcome = run_campaign(
//!     &spec,
//!     &CampaignOptions { out_dir: out_dir.clone(), ..CampaignOptions::default() },
//! )
//! .unwrap();
//! assert!(outcome.completed);
//! assert_eq!(outcome.ran_shards, 2 * 2 * 2);
//! # std::fs::remove_dir_all(&out_dir).ok();
//! ```

pub mod checkpoint;
pub mod json;
pub mod runner;
pub mod spec;
pub mod summary;

pub use checkpoint::{
    CellMeta, Checkpoint, HoldingRecord, Journal, JournalEntry, RecoveryRecord, TrialRecord,
};
pub use runner::{
    checkpoint_path, journal_path, run_campaign, summary_path, CampaignOptions, CampaignOutcome,
};
pub use spec::{
    fault_plan_from_json, fault_plan_to_json, CellSpec, FaultSpec, ProtocolSpec, ShardSpec,
    SweepSpec,
};
