//! Campaign summaries: per-cell statistics, scaling-exponent fits, and
//! the deterministic `summary.json` / CSV renderings.

use super::checkpoint::Checkpoint;
use super::json::Json;
use super::spec::{CellSpec, FaultSpec, SweepSpec};
use crate::report::{fmt_num, Table};
use popele_math::fit::power_fit;
use popele_math::stats::Summary;

/// Digested view of one cell.
struct CellDigest {
    cell: CellSpec,
    n: u32,
    m: u64,
    steps: Summary,
    timeouts: usize,
    /// Reconvergence times (steps from the last fault to renewed
    /// stability) over recovered trials — empty for fault-free cells.
    reconvergence: Summary,
    /// Trials that ended with the unique leader permanently lost.
    leaders_lost: usize,
    /// Worst leader-count excursion observed across the cell's trials.
    peak_leaders: u32,
    /// Whether the cell ran the self-stabilization workload (its
    /// records carry holding metrics).
    has_holding: bool,
    /// Hold durations (steps the unique-leader configuration survived
    /// past election) over trials whose hold was violated in-budget.
    hold: Summary,
    /// Trials whose hold was still intact at the budget
    /// (right-censored holds).
    held_to_budget: usize,
}

/// Digests every runnable cell, in grid order.
fn digest(spec: &SweepSpec, checkpoint: &Checkpoint) -> Vec<CellDigest> {
    spec.cells()
        .into_iter()
        .filter(|cell| spec.cell_skip_reason(cell).is_none())
        .map(|cell| {
            let key = cell.key();
            let meta = checkpoint.cells.get(&key).copied().unwrap_or_default();
            let records = checkpoint.cell_records(&key);
            let steps: Summary = records
                .iter()
                .filter_map(|r| r.steps)
                .map(|s| s as f64)
                .collect();
            let timeouts = records.iter().filter(|r| r.steps.is_none()).count();
            let recoveries = || records.iter().filter_map(|r| r.recovery);
            let reconvergence: Summary = recoveries()
                .filter_map(|r| r.reconvergence)
                .map(|s| s as f64)
                .collect();
            let holdings = || records.iter().filter_map(|r| r.holding);
            let hold: Summary = holdings()
                .filter_map(|h| h.hold)
                .map(|s| s as f64)
                .collect();
            CellDigest {
                cell,
                n: meta.n,
                m: meta.m,
                steps,
                timeouts,
                reconvergence,
                leaders_lost: recoveries().filter(|r| r.leader_lost).count(),
                peak_leaders: recoveries().map(|r| r.peak_leaders).max().unwrap_or(0),
                has_holding: holdings().next().is_some(),
                hold,
                held_to_budget: holdings().filter(|h| h.held_to_budget).count(),
            }
        })
        .collect()
}

/// A fitted scaling law for one (protocol, family, fault) row of the
/// grid.
struct FitDigest {
    protocol: String,
    family: String,
    fault: String,
    points: usize,
    exponent: f64,
    coefficient: f64,
    r_squared: f64,
}

/// Power-law fits of mean stabilization steps against the measured node
/// count, one per (protocol, family, fault) triple with at least two
/// cells that produced successful trials at distinct sizes. Fault
/// profiles fit separately — pooling perturbed and clean cells would
/// blur both laws. Timeout-only cells contribute no point — a fit over
/// censored data would be noise.
fn fits(spec: &SweepSpec, digests: &[CellDigest]) -> Vec<FitDigest> {
    let mut out = Vec::new();
    for &protocol in &spec.protocols {
        for &family in &spec.families {
            for &fault in &spec.faults {
                let points: Vec<(f64, f64)> = digests
                    .iter()
                    .filter(|d| {
                        d.cell.protocol == protocol
                            && d.cell.family == family
                            && d.cell.fault == fault
                            && !d.steps.is_empty()
                    })
                    .map(|d| (f64::from(d.n), d.steps.mean().max(1.0)))
                    .collect();
                let distinct_sizes = {
                    let mut xs: Vec<u64> = points.iter().map(|p| p.0 as u64).collect();
                    xs.sort_unstable();
                    xs.dedup();
                    xs.len()
                };
                if distinct_sizes < 2 {
                    continue;
                }
                let fit = power_fit(&points);
                out.push(FitDigest {
                    protocol: protocol.label().to_string(),
                    family: family.label().to_string(),
                    fault: fault.label().to_string(),
                    points: points.len(),
                    exponent: fit.exponent,
                    coefficient: fit.coefficient,
                    r_squared: fit.r_squared,
                });
            }
        }
    }
    out
}

/// The campaign's report tables (cells, scaling fits, and — when any —
/// skipped cells), ready for rendering and CSV export.
#[must_use]
pub fn tables(spec: &SweepSpec, checkpoint: &Checkpoint) -> Vec<Table> {
    let digests = digest(spec, checkpoint);
    let mut cells = Table::new(
        format!("sweep {} cells", spec.name),
        format!(
            "mean/median/quantiles of stabilization steps over successful trials; \
             budget {} steps/trial, master seed {}",
            spec.max_steps, spec.master_seed
        ),
        &[
            "protocol", "family", "size", "fault", "n", "m", "ok", "timeouts", "mean", "median",
            "q10", "q90",
        ],
    );
    for d in &digests {
        let stat = |v: f64| {
            if d.steps.is_empty() {
                "-".to_string()
            } else {
                fmt_num(v)
            }
        };
        cells.push_row(vec![
            d.cell.protocol.label().to_string(),
            d.cell.family.label().to_string(),
            d.cell.size.to_string(),
            d.cell.fault.label().to_string(),
            d.n.to_string(),
            d.m.to_string(),
            d.steps.len().to_string(),
            d.timeouts.to_string(),
            stat(d.steps.mean()),
            stat(if d.steps.is_empty() {
                0.0
            } else {
                d.steps.median()
            }),
            stat(if d.steps.is_empty() {
                0.0
            } else {
                d.steps.quantile(0.1)
            }),
            stat(if d.steps.is_empty() {
                0.0
            } else {
                d.steps.quantile(0.9)
            }),
        ]);
    }
    let mut fit_table = Table::new(
        format!("sweep {} scaling fits", spec.name),
        "power law mean_steps = C·n^a per (protocol, family, fault), over cells with successes",
        &[
            "protocol", "family", "fault", "points", "exponent", "C", "R^2",
        ],
    );
    for f in fits(spec, &digests) {
        fit_table.push_row(vec![
            f.protocol,
            f.family,
            f.fault,
            f.points.to_string(),
            fmt_num(f.exponent),
            fmt_num(f.coefficient),
            fmt_num(f.r_squared),
        ]);
    }
    let mut out = vec![cells, fit_table];

    if spec.faults.iter().any(|&f| f != FaultSpec::None) {
        let mut recovery = Table::new(
            format!("sweep {} recovery", spec.name),
            "per faulted cell: reconvergence steps after the last fault over recovered trials, \
             trials whose unique leader was permanently lost, and the worst leader-count \
             excursion",
            &[
                "protocol",
                "family",
                "size",
                "fault",
                "recovered",
                "lost",
                "peak",
                "reconv_mean",
                "reconv_median",
                "reconv_q90",
            ],
        );
        for d in digests.iter().filter(|d| d.cell.fault != FaultSpec::None) {
            let stat = |v: f64| {
                if d.reconvergence.is_empty() {
                    "-".to_string()
                } else {
                    fmt_num(v)
                }
            };
            recovery.push_row(vec![
                d.cell.protocol.label().to_string(),
                d.cell.family.label().to_string(),
                d.cell.size.to_string(),
                d.cell.fault.label().to_string(),
                d.reconvergence.len().to_string(),
                d.leaders_lost.to_string(),
                d.peak_leaders.to_string(),
                stat(d.reconvergence.mean()),
                stat(if d.reconvergence.is_empty() {
                    0.0
                } else {
                    d.reconvergence.median()
                }),
                stat(if d.reconvergence.is_empty() {
                    0.0
                } else {
                    d.reconvergence.quantile(0.9)
                }),
            ]);
        }
        out.push(recovery);
    }

    if digests.iter().any(|d| d.has_holding) {
        let mut holding = Table::new(
            format!("sweep {} holding", spec.name),
            "per self-stabilization cell (arbitrary starts): election steps, hold durations \
             over violated trials, and holds still intact at the budget (censored)",
            &[
                "protocol",
                "family",
                "size",
                "fault",
                "elected",
                "timeouts",
                "elect_mean",
                "hold_mean",
                "hold_q90",
                "censored",
            ],
        );
        for d in digests.iter().filter(|d| d.has_holding) {
            let elect = |v: f64| {
                if d.steps.is_empty() {
                    "-".to_string()
                } else {
                    fmt_num(v)
                }
            };
            let held = |v: f64| {
                if d.hold.is_empty() {
                    "-".to_string()
                } else {
                    fmt_num(v)
                }
            };
            holding.push_row(vec![
                d.cell.protocol.label().to_string(),
                d.cell.family.label().to_string(),
                d.cell.size.to_string(),
                d.cell.fault.label().to_string(),
                d.steps.len().to_string(),
                d.timeouts.to_string(),
                elect(d.steps.mean()),
                held(d.hold.mean()),
                held(if d.hold.is_empty() {
                    0.0
                } else {
                    d.hold.quantile(0.9)
                }),
                d.held_to_budget.to_string(),
            ]);
        }
        out.push(holding);
    }

    let skipped: Vec<(CellSpec, String)> = spec
        .cells()
        .into_iter()
        .filter_map(|c| spec.cell_skip_reason(&c).map(|r| (c, r)))
        .collect();
    if !skipped.is_empty() {
        let mut table = Table::new(
            format!("sweep {} skipped cells", spec.name),
            "cells excluded from execution, with the reason",
            &["protocol", "family", "size", "fault", "reason"],
        );
        for (c, reason) in skipped {
            table.push_row(vec![
                c.protocol.label().to_string(),
                c.family.label().to_string(),
                c.size.to_string(),
                c.fault.label().to_string(),
                reason,
            ]);
        }
        out.push(table);
    }
    out
}

/// Renders `summary.json`: everything the tables show, as raw values.
/// A pure function of (spec, checkpoint), rendered canonically — the
/// byte-identity guarantees of the campaign runner extend to this file.
#[must_use]
pub fn render(spec: &SweepSpec, checkpoint: &Checkpoint) -> String {
    let digests = digest(spec, checkpoint);
    let cells = digests
        .iter()
        .map(|d| {
            let stats = if d.steps.is_empty() {
                Json::Null
            } else {
                Json::Obj(vec![
                    ("mean".into(), Json::Num(d.steps.mean())),
                    ("median".into(), Json::Num(d.steps.median())),
                    ("q10".into(), Json::Num(d.steps.quantile(0.1))),
                    ("q90".into(), Json::Num(d.steps.quantile(0.9))),
                    ("min".into(), Json::Num(d.steps.min())),
                    ("max".into(), Json::Num(d.steps.max())),
                ])
            };
            let recovery = if d.cell.fault == FaultSpec::None {
                Json::Null
            } else {
                let reconv = if d.reconvergence.is_empty() {
                    Json::Null
                } else {
                    Json::Obj(vec![
                        ("mean".into(), Json::Num(d.reconvergence.mean())),
                        ("median".into(), Json::Num(d.reconvergence.median())),
                        ("q90".into(), Json::Num(d.reconvergence.quantile(0.9))),
                        ("max".into(), Json::Num(d.reconvergence.max())),
                    ])
                };
                Json::Obj(vec![
                    (
                        "recovered".into(),
                        Json::from_u64(d.reconvergence.len() as u64),
                    ),
                    ("lost".into(), Json::from_u64(d.leaders_lost as u64)),
                    (
                        "peak_leaders".into(),
                        Json::from_u64(u64::from(d.peak_leaders)),
                    ),
                    ("reconvergence".into(), reconv),
                ])
            };
            let holding = if !d.has_holding {
                Json::Null
            } else {
                let hold = if d.hold.is_empty() {
                    Json::Null
                } else {
                    Json::Obj(vec![
                        ("mean".into(), Json::Num(d.hold.mean())),
                        ("median".into(), Json::Num(d.hold.median())),
                        ("q90".into(), Json::Num(d.hold.quantile(0.9))),
                        ("max".into(), Json::Num(d.hold.max())),
                    ])
                };
                Json::Obj(vec![
                    ("violated".into(), Json::from_u64(d.hold.len() as u64)),
                    (
                        "held_to_budget".into(),
                        Json::from_u64(d.held_to_budget as u64),
                    ),
                    ("hold".into(), hold),
                ])
            };
            Json::Obj(vec![
                ("protocol".into(), Json::Str(d.cell.protocol.label().into())),
                ("family".into(), Json::Str(d.cell.family.label().into())),
                ("size".into(), Json::from_u64(u64::from(d.cell.size))),
                ("fault".into(), Json::Str(d.cell.fault.label().into())),
                ("n".into(), Json::from_u64(u64::from(d.n))),
                ("m".into(), Json::from_u64(d.m)),
                ("successes".into(), Json::from_u64(d.steps.len() as u64)),
                ("timeouts".into(), Json::from_u64(d.timeouts as u64)),
                ("steps".into(), stats),
                ("recovery".into(), recovery),
                ("holding".into(), holding),
            ])
        })
        .collect();
    let fit_rows = fits(spec, &digests)
        .into_iter()
        .map(|f| {
            Json::Obj(vec![
                ("protocol".into(), Json::Str(f.protocol)),
                ("family".into(), Json::Str(f.family)),
                ("fault".into(), Json::Str(f.fault)),
                ("points".into(), Json::from_u64(f.points as u64)),
                ("exponent".into(), Json::Num(f.exponent)),
                ("coefficient".into(), Json::Num(f.coefficient)),
                ("r_squared".into(), Json::Num(f.r_squared)),
            ])
        })
        .collect();
    let skipped = spec
        .cells()
        .into_iter()
        .filter_map(|c| {
            spec.cell_skip_reason(&c).map(|reason| {
                Json::Obj(vec![
                    ("protocol".into(), Json::Str(c.protocol.label().into())),
                    ("family".into(), Json::Str(c.family.label().into())),
                    ("size".into(), Json::from_u64(u64::from(c.size))),
                    ("fault".into(), Json::Str(c.fault.label().into())),
                    ("reason".into(), Json::Str(reason)),
                ])
            })
        })
        .collect();
    Json::Obj(vec![
        ("campaign".into(), Json::Str(spec.name.clone())),
        ("fingerprint".into(), Json::Str(spec.fingerprint())),
        // As a string: JSON numbers are f64, which cannot hold every u64.
        (
            "master_seed".into(),
            Json::Str(spec.master_seed.to_string()),
        ),
        ("cells".into(), Json::Arr(cells)),
        ("fits".into(), Json::Arr(fit_rows)),
        ("skipped".into(), Json::Arr(skipped)),
    ])
    .render()
}
