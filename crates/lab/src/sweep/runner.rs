//! Campaign execution: shards through `run_trials_auto`, checkpoint
//! after every shard, outputs at the end.
//!
//! The runner is deliberately boring: enumerate the spec's shards in
//! their deterministic order, skip the ones the checkpoint already
//! holds, run the rest (each through the engine-selecting, fault-aware
//! [`run_trials_auto_with_faults`] with a globally-indexed
//! `first_trial`), and save
//! the checkpoint atomically after each one. All the reproducibility
//! guarantees live below (seed derivation in the spec, trace-identical
//! engines, canonical serialization); the runner just never reorders or
//! re-derives anything.

use super::checkpoint::{CellMeta, Checkpoint};
use super::spec::{CellSpec, ProtocolSpec, SweepSpec};
use super::summary;
use crate::report::Table;
use crate::workloads::{broadcast_guess, Family};
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{
    FastProtocol, IdentifierProtocol, LooseProtocol, MajorityProtocol, RingLooseProtocol,
    StarProtocol, TokenProtocol,
};
use popele_engine::faults::FaultPlan;
use popele_engine::monte_carlo::{
    run_trials_auto_with_faults, run_trials_count, TrialOptions, TrialResult,
};
use popele_engine::stabilize::run_trials_stabilize_auto;
use popele_graph::Graph;
use std::io;
use std::path::{Path, PathBuf};

/// Execution options orthogonal to the grid itself.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Directory under which `<spec.name>/` is created.
    pub out_dir: PathBuf,
    /// Stop after this many *newly run* shards (checkpoint hits do not
    /// count), leaving a resumable checkpoint behind. `None` runs to
    /// completion. This is how the CLI's `--max-shards` budgets a long
    /// campaign across invocations — and how the resume tests simulate
    /// a kill.
    pub interrupt_after: Option<usize>,
    /// Print per-shard progress to stderr.
    pub progress: bool,
    /// Opt into the lane-parallel dense engine for eligible shards
    /// (fault-free cells whose protocol wins the AOT tier, with at
    /// least `popele_engine::monte_carlo::LANE_MIN_TRIALS` trials in
    /// the shard — see [`TrialOptions::lanes`]). The engines are
    /// trace-identical per trial, so `checkpoint.json` and
    /// `summary.json` are byte-identical with the flag on or off; only
    /// wall-clock time changes.
    pub lanes: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            out_dir: PathBuf::from("results"),
            interrupt_after: None,
            progress: false,
            lanes: false,
        }
    }
}

/// What a [`run_campaign`] call did.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Whether every shard of the grid is now complete (outputs were
    /// written) or the run stopped at `interrupt_after`.
    pub completed: bool,
    /// Shards executed by this call.
    pub ran_shards: usize,
    /// Shards already present in the checkpoint (resumed work).
    pub resumed_shards: usize,
    /// Campaign directory (`out_dir/<name>`).
    pub dir: PathBuf,
    /// Rendered summary tables (empty unless completed).
    pub tables: Vec<Table>,
}

/// Path of a campaign's checkpoint file.
#[must_use]
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.json")
}

/// Path of a campaign's summary JSON.
#[must_use]
pub fn summary_path(dir: &Path) -> PathBuf {
    dir.join("summary.json")
}

/// Runs (or resumes) a campaign.
///
/// If a checkpoint with the spec's fingerprint exists under the
/// campaign directory its shards are reused; a checkpoint from a
/// *different* grid is an error (use a different campaign name, or
/// delete the directory). On completion, `summary.json` plus per-table
/// CSVs are written next to the checkpoint and the summary tables are
/// returned.
///
/// For a fixed spec the bytes of `checkpoint.json` and `summary.json`
/// are identical regardless of thread count and of how often the run
/// was interrupted and resumed.
///
/// # Errors
///
/// Propagates I/O errors; an incompatible existing checkpoint or an
/// invalid campaign name (see [`SweepSpec::valid_name`]) surfaces as
/// [`io::ErrorKind::InvalidInput`].
pub fn run_campaign(spec: &SweepSpec, options: &CampaignOptions) -> io::Result<CampaignOutcome> {
    if !SweepSpec::valid_name(&spec.name) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid campaign name {:?}", spec.name),
        ));
    }
    let dir = options.out_dir.join(&spec.name);
    std::fs::create_dir_all(&dir)?;
    let ckpt_path = checkpoint_path(&dir);

    let mut checkpoint = if ckpt_path.exists() {
        let loaded = Checkpoint::load(&ckpt_path)?;
        if loaded.fingerprint != spec.fingerprint() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "checkpoint {} belongs to a different grid\n  have: {}\n  want: {}",
                    ckpt_path.display(),
                    loaded.fingerprint,
                    spec.fingerprint()
                ),
            ));
        }
        loaded
    } else {
        Checkpoint::new(spec)
    };

    let shards = spec.shards();
    let total = shards.len();
    let mut ran = 0usize;
    let mut resumed = 0usize;
    // Consecutive shards share their (family, size) graph; build it once.
    let mut cached: Option<(Family, u32, Graph)> = None;

    for (i, shard) in shards.iter().enumerate() {
        let key = shard.key();
        if checkpoint.shards.contains_key(&key) {
            resumed += 1;
            continue;
        }
        if options.interrupt_after == Some(ran) {
            return Ok(CampaignOutcome {
                completed: false,
                ran_shards: ran,
                resumed_shards: resumed,
                dir,
                tables: Vec::new(),
            });
        }
        let (family, size) = (shard.cell.family, shard.cell.size);
        let results = if spec.cell_is_count(&shard.cell) {
            // Count cells never materialize a graph: the clique is
            // fully described by its size, and its edge count is
            // analytic — n(n−1)/2.
            let m = u64::from(size) * (u64::from(size) - 1) / 2;
            if options.progress {
                eprintln!(
                    "[sweep {}] shard {}/{total}: {key} (n={size}, m={m}, count engine)",
                    spec.name,
                    i + 1,
                );
            }
            checkpoint
                .cells
                .entry(shard.cell.key())
                .or_insert(CellMeta { n: size, m });
            run_shard_count(spec, &shard.cell, shard.first_trial, shard.trials)
        } else {
            let graph_is_cached = matches!(&cached, Some((f, s, _)) if *f == family && *s == size);
            if !graph_is_cached {
                cached = Some((
                    family,
                    size,
                    family.generate(size, spec.graph_seed(family, size)),
                ));
            }
            let graph = &cached.as_ref().expect("just cached").2;
            if options.progress {
                eprintln!(
                    "[sweep {}] shard {}/{total}: {key} (n={}, m={})",
                    spec.name,
                    i + 1,
                    graph.num_nodes(),
                    graph.num_edges()
                );
            }
            checkpoint
                .cells
                .entry(shard.cell.key())
                .or_insert(CellMeta {
                    n: graph.num_nodes(),
                    m: graph.num_edges() as u64,
                });
            run_shard(
                spec,
                &shard.cell,
                graph,
                shard.first_trial,
                shard.trials,
                options.lanes,
            )
        };
        checkpoint
            .shards
            .insert(key, results.iter().map(Into::into).collect());
        checkpoint.save(&ckpt_path)?;
        ran += 1;
    }

    let tables = summary::tables(spec, &checkpoint);
    std::fs::write(summary_path(&dir), summary::render(spec, &checkpoint))?;
    for table in &tables {
        table.write_csv(&dir)?;
    }
    Ok(CampaignOutcome {
        completed: true,
        ran_shards: ran,
        resumed_shards: resumed,
        dir,
        tables,
    })
}

/// Runs one shard of a cell: instantiates the protocol for the concrete
/// graph (deterministically), derives the cell's fault plan from its
/// profile, and hands both to the engine-selecting, fault-aware
/// Monte-Carlo entry point (a fault-free cell's empty plan delegates to
/// the plain path, bit for bit).
fn run_shard(
    spec: &SweepSpec,
    cell: &CellSpec,
    graph: &Graph,
    first_trial: usize,
    trials: usize,
    lanes: bool,
) -> Vec<TrialResult> {
    let options = TrialOptions {
        trials,
        first_trial,
        max_steps: spec.max_steps,
        census: false,
        lanes,
        threads: spec.threads,
    };
    let seed = spec.cell_seed(cell);
    let plan: FaultPlan = cell.fault.plan(graph.num_nodes());
    let run = |p: &dyn DynProtocolRunner| p.run(graph, seed, options, &plan);
    match cell.protocol {
        ProtocolSpec::Token => run(&TokenProtocol::all_candidates()),
        ProtocolSpec::Identifier => run(&IdentifierProtocol::new(identifier_bits(
            graph.num_nodes(),
            false,
        ))),
        ProtocolSpec::Fast => {
            // The a-priori broadcast guess is deterministic in the
            // graph, keeping the cell self-contained (no measurement
            // sub-experiment whose seeds would have to be checkpointed).
            let params = FastParams::practical(
                broadcast_guess(graph),
                graph.max_degree(),
                graph.num_edges(),
                graph.num_nodes(),
            );
            run(&FastProtocol::new(params))
        }
        ProtocolSpec::Star => run(&StarProtocol::new()),
        ProtocolSpec::Majority => {
            let n = graph.num_nodes();
            run(&MajorityProtocol::new(
                crate::workloads::majority_split(n),
                n,
            ))
        }
        // The self-stabilization cells: arbitrary per-trial start
        // configurations, election + holding metrics — same engine
        // selection and determinism contract, different entry point.
        ProtocolSpec::Loose => run_trials_stabilize_auto(
            graph,
            &LooseProtocol::practical(graph.num_nodes()),
            seed,
            options,
            &plan,
        ),
        ProtocolSpec::RingLoose => run_trials_stabilize_auto(
            graph,
            &RingLooseProtocol::for_ring(graph.num_nodes()),
            seed,
            options,
            &plan,
        ),
    }
}

/// Runs one shard of a **count cell** (see [`SweepSpec::cell_is_count`]):
/// same seed derivation and trial indexing as [`run_shard`], but through
/// the graph-free [`run_trials_count`] entry point. Protocol parameters
/// that [`run_shard`] derives from the concrete graph are derived
/// analytically from the clique instead — the fast protocol runs its
/// clique specialization [`FastParams::clique_tuned`] (the waiting
/// phase guards against degree spread, which a clique does not have;
/// collapsing it is what makes `10⁷`–`10⁹` elections land in `Θ(log n)`
/// parallel time instead of the waiting phase's
/// `⌈log₂ n⌉·2^h`-parallel-unit climb).
fn run_shard_count(
    spec: &SweepSpec,
    cell: &CellSpec,
    first_trial: usize,
    trials: usize,
) -> Vec<TrialResult> {
    let options = TrialOptions {
        trials,
        first_trial,
        max_steps: spec.max_steps,
        census: false,
        // The count tier is distribution-exact, not trace-identical;
        // the lane flag is meaningless there.
        lanes: false,
        threads: spec.threads,
    };
    let seed = spec.cell_seed(cell);
    let n = cell.size;
    let num_agents = u64::from(n);
    match cell.protocol {
        ProtocolSpec::Token => {
            run_trials_count(&TokenProtocol::all_candidates(), num_agents, seed, options)
        }
        ProtocolSpec::Fast => run_trials_count(
            &FastProtocol::new(FastParams::clique_tuned(n)),
            num_agents,
            seed,
            options,
        ),
        ProtocolSpec::Majority => run_trials_count(
            &MajorityProtocol::new(crate::workloads::majority_split(n), n),
            num_agents,
            seed,
            options,
        ),
        other => unreachable!("{other} is not count-capable; cell_is_count gates this path"),
    }
}

/// Object-safe shim dispatching a concrete protocol into the generic
/// fault-aware Monte-Carlo entry point (keeps `run_shard`'s per-protocol
/// match to one line each).
trait DynProtocolRunner {
    fn run(
        &self,
        graph: &Graph,
        seed: u64,
        options: TrialOptions,
        plan: &FaultPlan,
    ) -> Vec<TrialResult>;
}

impl<P: popele_engine::Protocol + Clone> DynProtocolRunner for P {
    fn run(
        &self,
        graph: &Graph,
        seed: u64,
        options: TrialOptions,
        plan: &FaultPlan,
    ) -> Vec<TrialResult> {
        run_trials_auto_with_faults(graph, self, seed, options, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &str) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
            families: vec![Family::Clique, Family::Star],
            sizes: vec![8, 12],
            trials_per_cell: 3,
            shard_trials: 2,
            max_steps: 1 << 22,
            master_seed: 0xFEED,
            threads: 1,
            max_edges: 1 << 20,
            ..SweepSpec::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("popele-runner-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn campaign_completes_and_writes_outputs() {
        let out = temp_dir("complete");
        let spec = tiny_spec("t1");
        let outcome = run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert!(outcome.completed);
        // 8 cells × 2 shards each (3 trials in shards of 2).
        assert_eq!(outcome.ran_shards, 16);
        assert_eq!(outcome.resumed_shards, 0);
        assert!(checkpoint_path(&outcome.dir).exists());
        assert!(summary_path(&outcome.dir).exists());
        assert!(!outcome.tables.is_empty());
        // Re-running resumes everything and reruns nothing.
        let again = run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(again.ran_shards, 0);
        assert_eq!(again.resumed_shards, 16);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn count_cells_run_graph_free_and_record_analytic_meta() {
        let out = temp_dir("count");
        // majority on a 40_000-clique elects within the default budget;
        // the clique is far past the edge budget, so only the count
        // tier can run it (no graph is ever materialized).
        let spec = SweepSpec {
            name: "count".into(),
            protocols: vec![ProtocolSpec::Majority],
            families: vec![Family::Clique],
            sizes: vec![40_000],
            trials_per_cell: 2,
            shard_trials: 2,
            max_steps: 200_000_000,
            master_seed: 0xFEED,
            threads: 1,
            max_edges: 1 << 20,
            ..SweepSpec::default()
        };
        let cell = spec.cells()[0];
        assert!(spec.cell_is_count(&cell));
        let outcome = run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.ran_shards, 1);
        let ckpt = Checkpoint::load(&checkpoint_path(&outcome.dir)).unwrap();
        let meta = &ckpt.cells["majority/clique/40000"];
        assert_eq!(meta.n, 40_000);
        assert_eq!(meta.m, 40_000u64 * 39_999 / 2);
        let records = &ckpt.shards["majority/clique/40000/s0"];
        assert_eq!(records.len(), 2);
        for r in records {
            assert!(r.steps.is_some(), "majority did not elect");
        }
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn path_like_campaign_names_are_refused() {
        for bad in ["", "..", "evil/name"] {
            let spec = SweepSpec {
                name: bad.into(),
                ..tiny_spec(bad)
            };
            let err = run_campaign(&spec, &CampaignOptions::default()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad:?}");
        }
    }

    #[test]
    fn incompatible_checkpoint_is_refused() {
        let out = temp_dir("refuse");
        let spec = tiny_spec("t2");
        run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        let mut other = spec;
        other.master_seed ^= 1;
        let err = run_campaign(
            &other,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&out).ok();
    }
}
