//! Campaign execution: a work-stealing shard scheduler over prepared
//! per-cell artifacts, with journaled checkpoints.
//!
//! The runner stays deliberately boring about *results*: enumerate the
//! spec's shards in their deterministic order, skip the ones the
//! checkpoint already holds, run the rest (each through the prepared,
//! fault-aware Monte-Carlo entry points with a globally-indexed
//! `first_trial`). All the reproducibility guarantees live below (seed
//! derivation in the spec, trace-identical engines, canonical
//! serialization); the runner never reorders or re-derives anything
//! that could affect a trial. What *is* engineered here is throughput:
//!
//! * **Work-stealing shard execution** — [`CampaignOptions::workers`]
//!   worker threads claim shards from the deterministic shard list via
//!   an atomic cursor. Results land in [`Checkpoint`]'s sorted maps, so
//!   `checkpoint.json` and `summary.json` are byte-identical to the
//!   serial run no matter which worker finishes which shard when.
//! * **A cross-shard artifact cache** (`ArtifactCache`, private to this
//!   module) — graphs and
//!   per-cell prepared engines (compiled tables, engine-selection
//!   verdicts, resolved fault plans, derived protocol parameters) are
//!   built once per (family, size) or cell, shared across workers
//!   behind `Arc`s, and evicted as soon as their last pending shard
//!   completes.
//! * **Journaled checkpointing** — completing a shard appends one line
//!   to `checkpoint.log` (O(shard)) instead of rewriting the whole
//!   `checkpoint.json` (O(campaign)); the journal is periodically
//!   compacted into the canonical checkpoint, always compacted before
//!   returning, and replayed on load, so resume stays byte-exact even
//!   after a kill mid-campaign (see [`super::checkpoint::Journal`]).

use super::checkpoint::{CellMeta, Checkpoint, Journal, JournalEntry};
use super::spec::{CellSpec, ProtocolSpec, ShardSpec, SweepSpec};
use super::summary;
use crate::report::Table;
use crate::workloads::{broadcast_guess, Family};
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{
    FastProtocol, IdentifierProtocol, LooseProtocol, MajorityProtocol, RingLooseProtocol,
    SpaceOptimalProtocol, StarProtocol, TimeOptimalRingProtocol, TokenProtocol,
};
use popele_engine::faults::FaultPlan;
use popele_engine::monte_carlo::{
    run_trials_auto_with_faults_prepared, run_trials_count_prepared, Engine, EngineSelection,
    TrialOptions, TrialResult,
};
use popele_engine::stabilize::{
    prepare_stabilize_engine, run_trials_stabilize_auto_prepared, ArbitraryInit,
};
use popele_engine::{compile_for_count, CompiledProtocol, Protocol};
use popele_graph::Graph;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Execution options orthogonal to the grid itself.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Directory under which `<spec.name>/` is created.
    pub out_dir: PathBuf,
    /// Stop after this many *newly run* shards (checkpoint hits do not
    /// count), leaving a resumable checkpoint behind. `None` runs to
    /// completion. This is how the CLI's `--max-shards` budgets a long
    /// campaign across invocations — and how the resume tests simulate
    /// a kill.
    pub interrupt_after: Option<usize>,
    /// Print per-shard progress (with the selected engine) to stderr.
    pub progress: bool,
    /// Opt into the lane-parallel dense engine for eligible shards
    /// (fault-free cells whose protocol wins the AOT tier, with at
    /// least `popele_engine::monte_carlo::LANE_MIN_TRIALS` trials in
    /// the shard — see [`TrialOptions::lanes`]). The engines are
    /// trace-identical per trial, so `checkpoint.json` and
    /// `summary.json` are byte-identical with the flag on or off; only
    /// wall-clock time changes.
    pub lanes: bool,
    /// Concurrent shard workers; `1` (the default) runs shards
    /// serially, `0` uses one worker per available core. Workers steal
    /// shards from the deterministic shard list and merge results into
    /// the checkpoint's sorted maps, so outputs are byte-identical for
    /// every worker count — only wall-clock time changes. Composes
    /// with [`SweepSpec::threads`] (intra-shard trial parallelism);
    /// campaigns of many small shards want workers, campaigns of few
    /// huge cells want threads.
    pub workers: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            out_dir: PathBuf::from("results"),
            interrupt_after: None,
            progress: false,
            lanes: false,
            workers: 1,
        }
    }
}

/// What a [`run_campaign`] call did.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Whether every shard of the grid is now complete (outputs were
    /// written) or the run stopped at `interrupt_after`.
    pub completed: bool,
    /// Shards executed by this call.
    pub ran_shards: usize,
    /// Shards already present in the checkpoint (resumed work,
    /// including shards replayed from the journal).
    pub resumed_shards: usize,
    /// Campaign directory (`out_dir/<name>`).
    pub dir: PathBuf,
    /// Rendered summary tables (empty unless completed).
    pub tables: Vec<Table>,
}

/// Path of a campaign's checkpoint file.
#[must_use]
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.json")
}

/// Path of a campaign's shard journal (see
/// [`super::checkpoint::Journal`]).
#[must_use]
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.log")
}

/// Path of a campaign's summary JSON.
#[must_use]
pub fn summary_path(dir: &Path) -> PathBuf {
    dir.join("summary.json")
}

/// Journal length below which compaction is never worth a full
/// checkpoint rewrite.
const COMPACT_MIN_ENTRIES: usize = 32;

/// Whether the journal has grown enough (relative to the campaign) to
/// fold into the canonical checkpoint. The `shards / 4` term keeps the
/// *amortized* per-shard save cost flat in campaign size: each O(n)
/// rewrite is paid for by the Ω(n/4) appended shards that triggered it.
fn compaction_due(journal_entries: usize, checkpoint_shards: usize) -> bool {
    journal_entries >= COMPACT_MIN_ENTRIES.max(checkpoint_shards / 4)
}

fn resolve_workers(requested: usize, shards: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    workers.min(shards.max(1))
}

/// Runs (or resumes) a campaign.
///
/// If a checkpoint with the spec's fingerprint exists under the
/// campaign directory its shards are reused (journaled shards a
/// previous run had not yet compacted are replayed first); a checkpoint
/// from a *different* grid is an error (use a different campaign name,
/// or delete the directory). On completion, `summary.json` plus
/// per-table CSVs are written next to the checkpoint and the summary
/// tables are returned.
///
/// For a fixed spec the bytes of `checkpoint.json` and `summary.json`
/// are identical regardless of worker count, thread count, shard
/// completion order, and of how often the run was interrupted and
/// resumed.
///
/// # Errors
///
/// Propagates I/O errors; an incompatible existing checkpoint (or
/// journal) or an invalid campaign name (see [`SweepSpec::valid_name`])
/// surfaces as [`io::ErrorKind::InvalidInput`] /
/// [`io::ErrorKind::InvalidData`].
pub fn run_campaign(spec: &SweepSpec, options: &CampaignOptions) -> io::Result<CampaignOutcome> {
    if !SweepSpec::valid_name(&spec.name) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid campaign name {:?}", spec.name),
        ));
    }
    let dir = options.out_dir.join(&spec.name);
    std::fs::create_dir_all(&dir)?;
    let ckpt_path = checkpoint_path(&dir);

    let mut checkpoint = if ckpt_path.exists() {
        let loaded = Checkpoint::load(&ckpt_path)?;
        if loaded.fingerprint != spec.fingerprint() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "checkpoint {} belongs to a different grid\n  have: {}\n  want: {}",
                    ckpt_path.display(),
                    loaded.fingerprint,
                    spec.fingerprint()
                ),
            ));
        }
        loaded
    } else {
        Checkpoint::new(spec)
    };
    let fingerprint = checkpoint.fingerprint.clone();

    // Replay shards a previous run journaled but never compacted (e.g.
    // it was killed): after this, the in-memory checkpoint is the union
    // of checkpoint.json and checkpoint.log, exactly as if every one of
    // those shards had been compacted in.
    let (journal, replayed) = Journal::open(&journal_path(&dir), &fingerprint)?;
    for entry in &replayed {
        checkpoint.apply_entry(entry);
    }

    let shards = spec.shards();
    let total = shards.len();
    let pending: Vec<(usize, &ShardSpec)> = shards
        .iter()
        .enumerate()
        .filter(|(_, shard)| !checkpoint.shards.contains_key(&shard.key()))
        .collect();
    let resumed = total - pending.len();
    let to_run = options
        .interrupt_after
        .map_or(pending.len(), |cap| pending.len().min(cap));
    let completed = to_run == pending.len();
    let batch = &pending[..to_run];

    let cache = ArtifactCache::plan(spec, batch);
    let workers = resolve_workers(options.workers, to_run);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let sink = Mutex::new(Sink {
        checkpoint,
        journal,
        error: None,
        ran: 0,
    });

    // One worker body for every worker count: serial is the pool of
    // one, so there is no second code path to drift.
    let worker = || {
        loop {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let slot = next.fetch_add(1, Ordering::Relaxed);
            if slot >= batch.len() {
                return;
            }
            let (display, shard) = batch[slot];
            let entry = run_one_shard(spec, options, &cache, shard, display, total);
            cache.release(spec, shard);
            let mut sink = sink.lock().expect("sink poisoned");
            sink.checkpoint.apply_entry(&entry);
            sink.ran += 1;
            // O(shard) save: append to the journal; fold into the
            // canonical checkpoint only when compaction is due.
            let saved = sink.journal.append(&entry).and_then(|()| {
                if compaction_due(sink.journal.len(), sink.checkpoint.shards.len()) {
                    sink.checkpoint.save(&ckpt_path)?;
                    sink.journal.clear(&fingerprint)?;
                }
                Ok(())
            });
            if let Err(e) = saved {
                sink.error.get_or_insert(e);
                failed.store(true, Ordering::Relaxed);
                return;
            }
        }
    };
    if workers <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(worker);
            }
        });
    }

    let Sink {
        checkpoint,
        mut journal,
        error,
        ran,
    } = sink.into_inner().expect("sink poisoned");
    if let Some(e) = error {
        return Err(e);
    }

    // Graceful exits always compact, so checkpoint.json alone carries
    // every completed shard (resume tooling and the tests read it
    // directly); the journal only outlives a *kill*.
    checkpoint.save(&ckpt_path)?;
    if !completed {
        journal.clear(&fingerprint)?;
        return Ok(CampaignOutcome {
            completed: false,
            ran_shards: ran,
            resumed_shards: resumed,
            dir,
            tables: Vec::new(),
        });
    }
    journal.remove()?;

    let tables = summary::tables(spec, &checkpoint);
    std::fs::write(summary_path(&dir), summary::render(spec, &checkpoint))?;
    for table in &tables {
        table.write_csv(&dir)?;
    }
    Ok(CampaignOutcome {
        completed: true,
        ran_shards: ran,
        resumed_shards: resumed,
        dir,
        tables,
    })
}

/// Shared mutable tail of the pipeline: workers funnel completed shards
/// through one lock into the in-memory checkpoint and the journal.
struct Sink {
    checkpoint: Checkpoint,
    journal: Journal,
    error: Option<io::Error>,
    ran: usize,
}

/// Runs one claimed shard end to end: fetch (or build) the cell's
/// shared artifacts, print progress with the engine that will run, run
/// the trials, and pack the results as a journal entry.
fn run_one_shard(
    spec: &SweepSpec,
    options: &CampaignOptions,
    cache: &ArtifactCache,
    shard: &ShardSpec,
    display: usize,
    total: usize,
) -> JournalEntry {
    let key = shard.key();
    let (family, size) = (shard.cell.family, shard.cell.size);
    // Count cells never materialize a graph: the clique is fully
    // described by its size, and its edge count is analytic — n(n−1)/2.
    let graph = if spec.cell_is_count(&shard.cell) {
        None
    } else {
        Some(cache.graph(spec, family, size))
    };
    let runner = cache.cell(spec, &shard.cell, graph.as_deref());
    let trial_options = TrialOptions {
        trials: shard.trials,
        first_trial: shard.first_trial,
        max_steps: spec.max_steps,
        census: false,
        lanes: options.lanes,
        threads: spec.threads,
    };
    let meta = match graph.as_deref() {
        Some(g) => CellMeta {
            n: g.num_nodes(),
            m: g.num_edges() as u64,
        },
        None => CellMeta {
            n: size,
            m: u64::from(size) * (u64::from(size) - 1) / 2,
        },
    };
    if options.progress {
        eprintln!(
            "[sweep {}] shard {}/{total}: {key} (n={}, m={}, engine={})",
            spec.name,
            display + 1,
            meta.n,
            meta.m,
            runner.engine(&trial_options).label(),
        );
    }
    let results = runner.run(graph.as_deref(), spec.cell_seed(&shard.cell), trial_options);
    JournalEntry {
        shard_key: key,
        cell_key: shard.cell.key(),
        meta,
        records: results.iter().map(Into::into).collect(),
    }
}

/// A cache slot plus the number of still-pending shards that will read
/// it — the eviction countdown.
struct CacheSlot<T> {
    value: T,
    remaining: usize,
}

/// Keyed artifacts shared across workers for the duration of their
/// shards: graphs per (family, size) and prepared runners per cell.
///
/// Entries are built lazily by the first worker that needs them
/// (outside the lock, so a slow graph build never blocks workers on
/// *other* cells; a rare duplicate build is discarded by first-insert-
/// wins and both copies are identical, since construction is
/// deterministic) and evicted when their last planned shard completes,
/// so peak memory tracks the *active* cells, not the whole campaign —
/// the keyed generalization of the old single-entry consecutive-shard
/// graph cache.
struct ArtifactCache {
    graphs: Mutex<HashMap<GraphKey, CacheSlot<Arc<Graph>>>>,
    cells: Mutex<HashMap<String, CacheSlot<SharedRunner>>>,
    graph_uses: HashMap<GraphKey, usize>,
    cell_uses: HashMap<String, usize>,
}

/// One generated graph per (family, size) — the graph-cache key.
type GraphKey = (Family, u32);
/// A prepared cell runner as the cache (and every worker) holds it.
type SharedRunner = Arc<dyn PreparedRunner>;

impl ArtifactCache {
    /// Counts, per graph key and per cell key, how many of the shards
    /// about to run will read it — the initial eviction countdowns.
    fn plan(spec: &SweepSpec, batch: &[(usize, &ShardSpec)]) -> Self {
        let mut graph_uses = HashMap::new();
        let mut cell_uses = HashMap::new();
        for (_, shard) in batch {
            *cell_uses.entry(shard.cell.key()).or_insert(0) += 1;
            if !spec.cell_is_count(&shard.cell) {
                *graph_uses
                    .entry((shard.cell.family, shard.cell.size))
                    .or_insert(0) += 1;
            }
        }
        Self {
            graphs: Mutex::new(HashMap::new()),
            cells: Mutex::new(HashMap::new()),
            graph_uses,
            cell_uses,
        }
    }

    /// The shared graph of a (family, size), building it on first use.
    fn graph(&self, spec: &SweepSpec, family: Family, size: u32) -> Arc<Graph> {
        if let Some(slot) = self
            .graphs
            .lock()
            .expect("cache poisoned")
            .get(&(family, size))
        {
            return Arc::clone(&slot.value);
        }
        let built = Arc::new(family.generate(size, spec.graph_seed(family, size)));
        let remaining = self.graph_uses[&(family, size)];
        let mut map = self.graphs.lock().expect("cache poisoned");
        Arc::clone(
            &map.entry((family, size))
                .or_insert(CacheSlot {
                    value: built,
                    remaining,
                })
                .value,
        )
    }

    /// The shared prepared runner of a cell, building it on first use
    /// (`graph` must be `Some` exactly for non-count cells).
    fn cell(
        &self,
        spec: &SweepSpec,
        cell: &CellSpec,
        graph: Option<&Graph>,
    ) -> Arc<dyn PreparedRunner> {
        let key = cell.key();
        if let Some(slot) = self.cells.lock().expect("cache poisoned").get(&key) {
            return Arc::clone(&slot.value);
        }
        let built = prepare_cell(spec, cell, graph);
        let remaining = self.cell_uses[&key];
        let mut map = self.cells.lock().expect("cache poisoned");
        Arc::clone(
            &map.entry(key)
                .or_insert(CacheSlot {
                    value: built,
                    remaining,
                })
                .value,
        )
    }

    /// Counts one completed shard down, evicting artifacts whose last
    /// planned reader is done.
    fn release(&self, spec: &SweepSpec, shard: &ShardSpec) {
        let key = shard.cell.key();
        let mut cells = self.cells.lock().expect("cache poisoned");
        if let Some(slot) = cells.get_mut(&key) {
            slot.remaining -= 1;
            if slot.remaining == 0 {
                cells.remove(&key);
            }
        }
        drop(cells);
        if !spec.cell_is_count(&shard.cell) {
            let graph_key = (shard.cell.family, shard.cell.size);
            let mut graphs = self.graphs.lock().expect("cache poisoned");
            if let Some(slot) = graphs.get_mut(&graph_key) {
                slot.remaining -= 1;
                if slot.remaining == 0 {
                    graphs.remove(&graph_key);
                }
            }
        }
    }
}

/// One cell's prepared execution artifacts, behind an object-safe
/// facade so the cache can hold heterogeneous protocol types: the
/// instantiated protocol (with its graph-derived parameters), the
/// resolved fault plan, and the engine selection (with any compiled
/// table) — everything shards of the cell would otherwise re-derive.
trait PreparedRunner: Send + Sync {
    /// The engine a shard will run on under `options` (including the
    /// opt-in lane upgrade, which requires a fault-free cell).
    fn engine(&self, options: &TrialOptions) -> Engine;
    /// Runs one shard's trials; `graph` is `Some` exactly for
    /// non-count cells.
    fn run(&self, graph: Option<&Graph>, seed: u64, options: TrialOptions) -> Vec<TrialResult>;
}

/// Fixed-start cells: the fault-aware selecting path.
struct PreparedCell<P: Protocol + Clone> {
    protocol: P,
    plan: FaultPlan,
    selection: EngineSelection<P>,
}

impl<P: Protocol + Clone + Send> PreparedRunner for PreparedCell<P> {
    fn engine(&self, options: &TrialOptions) -> Engine {
        if self.plan.is_empty() {
            self.selection.engine_for(options)
        } else {
            self.selection.engine()
        }
    }

    fn run(&self, graph: Option<&Graph>, seed: u64, options: TrialOptions) -> Vec<TrialResult> {
        let graph = graph.expect("fixed-start cells run on a graph");
        run_trials_auto_with_faults_prepared(
            graph,
            &self.protocol,
            &self.selection,
            seed,
            options,
            &self.plan,
        )
    }
}

/// Self-stabilization cells: arbitrary per-trial start configurations,
/// election + holding metrics — same determinism contract, different
/// entry point (and a support-seeded compile, see
/// [`prepare_stabilize_engine`]).
struct PreparedStabCell<P: ArbitraryInit + Clone> {
    protocol: P,
    plan: FaultPlan,
    selection: EngineSelection<P>,
}

impl<P: ArbitraryInit + Clone + Send> PreparedRunner for PreparedStabCell<P> {
    fn engine(&self, _options: &TrialOptions) -> Engine {
        // The stabilize path has no lane tier; the selection is final.
        self.selection.engine()
    }

    fn run(&self, graph: Option<&Graph>, seed: u64, options: TrialOptions) -> Vec<TrialResult> {
        let graph = graph.expect("stabilizing cells run on a graph");
        run_trials_stabilize_auto_prepared(
            graph,
            &self.protocol,
            &self.selection,
            seed,
            options,
            &self.plan,
        )
    }
}

/// Count cells: graph-free clique batches over one shared compiled
/// table (see [`run_trials_count_prepared`]).
struct PreparedCountCell<P: Protocol + Clone> {
    compiled: CompiledProtocol<P>,
    num_agents: u64,
}

impl<P: Protocol + Clone + Send> PreparedRunner for PreparedCountCell<P> {
    fn engine(&self, _options: &TrialOptions) -> Engine {
        Engine::Count
    }

    fn run(&self, _graph: Option<&Graph>, seed: u64, options: TrialOptions) -> Vec<TrialResult> {
        run_trials_count_prepared(&self.compiled, self.num_agents, seed, options)
    }
}

fn prepared<P: Protocol + Clone + Send + 'static>(
    protocol: P,
    plan: FaultPlan,
    max_nodes: u32,
) -> Arc<dyn PreparedRunner> {
    let selection = EngineSelection::prepare(&protocol, max_nodes);
    Arc::new(PreparedCell {
        protocol,
        plan,
        selection,
    })
}

fn prepared_stab<P: ArbitraryInit + Clone + Send + 'static>(
    protocol: P,
    plan: FaultPlan,
    max_nodes: u32,
) -> Arc<dyn PreparedRunner> {
    let selection = prepare_stabilize_engine(&protocol, max_nodes);
    Arc::new(PreparedStabCell {
        protocol,
        plan,
        selection,
    })
}

fn prepared_count<P: Protocol + Clone + Send + 'static>(
    protocol: P,
    num_agents: u64,
) -> Arc<dyn PreparedRunner> {
    let compiled = compile_for_count(&protocol, num_agents)
        .expect("protocol state space exceeds the count-engine compile cap");
    Arc::new(PreparedCountCell {
        compiled,
        num_agents,
    })
}

/// Builds a cell's prepared artifacts: instantiates the protocol for
/// the concrete graph (deterministically), derives the cell's fault
/// plan from its profile, and runs engine selection once — repeated
/// shards of the cell reuse all of it. Count cells (see
/// [`SweepSpec::cell_is_count`]) derive parameters analytically from
/// the clique instead — the fast protocol runs its clique
/// specialization [`FastParams::clique_tuned`] (the waiting phase
/// guards against degree spread, which a clique does not have;
/// collapsing it is what makes `10⁷`–`10⁹` elections land in `Θ(log n)`
/// parallel time instead of the waiting phase's
/// `⌈log₂ n⌉·2^h`-parallel-unit climb).
fn prepare_cell(
    spec: &SweepSpec,
    cell: &CellSpec,
    graph: Option<&Graph>,
) -> Arc<dyn PreparedRunner> {
    if spec.cell_is_count(cell) {
        let n = cell.size;
        let num_agents = u64::from(n);
        return match cell.protocol {
            ProtocolSpec::Token => prepared_count(TokenProtocol::all_candidates(), num_agents),
            ProtocolSpec::Fast => {
                prepared_count(FastProtocol::new(FastParams::clique_tuned(n)), num_agents)
            }
            ProtocolSpec::Majority => prepared_count(
                MajorityProtocol::new(crate::workloads::majority_split(n), n),
                num_agents,
            ),
            ProtocolSpec::SpaceOpt => {
                prepared_count(SpaceOptimalProtocol::practical(n), num_agents)
            }
            other => unreachable!("{other} is not count-capable; cell_is_count gates this path"),
        };
    }
    let graph = graph.expect("non-count cells carry a graph");
    let plan: FaultPlan = cell.fault.plan(graph.num_nodes());
    // Selection (and any AOT compile) happens at the plan's maximum
    // node count, exactly as the self-selecting entry points do.
    let max_nodes = graph.num_nodes() + plan.max_joins();
    match cell.protocol {
        ProtocolSpec::Token => prepared(TokenProtocol::all_candidates(), plan, max_nodes),
        ProtocolSpec::Identifier => prepared(
            IdentifierProtocol::new(identifier_bits(graph.num_nodes(), false)),
            plan,
            max_nodes,
        ),
        ProtocolSpec::Fast => {
            // The a-priori broadcast guess is deterministic in the
            // graph, keeping the cell self-contained (no measurement
            // sub-experiment whose seeds would have to be checkpointed).
            let params = FastParams::practical(
                broadcast_guess(graph),
                graph.max_degree(),
                graph.num_edges(),
                graph.num_nodes(),
            );
            prepared(FastProtocol::new(params), plan, max_nodes)
        }
        ProtocolSpec::Star => prepared(StarProtocol::new(), plan, max_nodes),
        ProtocolSpec::Majority => {
            let n = graph.num_nodes();
            prepared(
                MajorityProtocol::new(crate::workloads::majority_split(n), n),
                plan,
                max_nodes,
            )
        }
        ProtocolSpec::Loose => {
            prepared_stab(LooseProtocol::practical(graph.num_nodes()), plan, max_nodes)
        }
        ProtocolSpec::RingLoose => prepared_stab(
            RingLooseProtocol::for_ring(graph.num_nodes()),
            plan,
            max_nodes,
        ),
        ProtocolSpec::SpaceOpt => prepared(
            SpaceOptimalProtocol::practical(graph.num_nodes()),
            plan,
            max_nodes,
        ),
        ProtocolSpec::RingTimeOpt => prepared_stab(
            TimeOptimalRingProtocol::for_ring(graph.num_nodes()),
            plan,
            max_nodes,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &str) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
            families: vec![Family::Clique, Family::Star],
            sizes: vec![8, 12],
            trials_per_cell: 3,
            shard_trials: 2,
            max_steps: 1 << 22,
            master_seed: 0xFEED,
            threads: 1,
            max_edges: 1 << 20,
            ..SweepSpec::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("popele-runner-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn campaign_completes_and_writes_outputs() {
        let out = temp_dir("complete");
        let spec = tiny_spec("t1");
        let outcome = run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert!(outcome.completed);
        // 8 cells × 2 shards each (3 trials in shards of 2).
        assert_eq!(outcome.ran_shards, 16);
        assert_eq!(outcome.resumed_shards, 0);
        assert!(checkpoint_path(&outcome.dir).exists());
        assert!(summary_path(&outcome.dir).exists());
        // A completed campaign leaves no journal behind.
        assert!(!journal_path(&outcome.dir).exists());
        assert!(!outcome.tables.is_empty());
        // Re-running resumes everything and reruns nothing.
        let again = run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(again.ran_shards, 0);
        assert_eq!(again.resumed_shards, 16);
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn worker_pool_output_is_byte_identical_to_serial() {
        let serial_out = temp_dir("workers-serial");
        let pooled_out = temp_dir("workers-pooled");
        let spec = tiny_spec("tw");
        for (out, workers) in [(&serial_out, 1), (&pooled_out, 4)] {
            let outcome = run_campaign(
                &spec,
                &CampaignOptions {
                    out_dir: out.clone(),
                    workers,
                    ..CampaignOptions::default()
                },
            )
            .unwrap();
            assert!(outcome.completed);
            assert_eq!(outcome.ran_shards, 16);
        }
        let a = std::fs::read(checkpoint_path(&serial_out.join("tw"))).unwrap();
        let b = std::fs::read(checkpoint_path(&pooled_out.join("tw"))).unwrap();
        assert_eq!(a, b);
        let a = std::fs::read(summary_path(&serial_out.join("tw"))).unwrap();
        let b = std::fs::read(summary_path(&pooled_out.join("tw"))).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&serial_out).ok();
        std::fs::remove_dir_all(&pooled_out).ok();
    }

    #[test]
    fn count_cells_run_graph_free_and_record_analytic_meta() {
        let out = temp_dir("count");
        // majority on a 40_000-clique elects within the default budget;
        // the clique is far past the edge budget, so only the count
        // tier can run it (no graph is ever materialized).
        let spec = SweepSpec {
            name: "count".into(),
            protocols: vec![ProtocolSpec::Majority],
            families: vec![Family::Clique],
            sizes: vec![40_000],
            trials_per_cell: 2,
            shard_trials: 2,
            max_steps: 200_000_000,
            master_seed: 0xFEED,
            threads: 1,
            max_edges: 1 << 20,
            ..SweepSpec::default()
        };
        let cell = spec.cells()[0];
        assert!(spec.cell_is_count(&cell));
        let outcome = run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.ran_shards, 1);
        let ckpt = Checkpoint::load(&checkpoint_path(&outcome.dir)).unwrap();
        let meta = &ckpt.cells["majority/clique/40000"];
        assert_eq!(meta.n, 40_000);
        assert_eq!(meta.m, 40_000u64 * 39_999 / 2);
        let records = &ckpt.shards["majority/clique/40000/s0"];
        assert_eq!(records.len(), 2);
        for r in records {
            assert!(r.steps.is_some(), "majority did not elect");
        }
        std::fs::remove_dir_all(&out).ok();
    }

    /// The two states-vs-time corner protocols land on the tiers their
    /// state-space bounds dictate: space-opt's `O(log log n)`-level
    /// table AOT-compiles on small cliques and is count-eligible at
    /// batch scale, while ring-time-opt's `Θ(n)` timer space overflows
    /// the AOT cap and takes the lazy tier.
    #[test]
    fn corner_protocol_cells_select_the_expected_tiers() {
        let spec = SweepSpec {
            name: "tiers".into(),
            protocols: vec![ProtocolSpec::SpaceOpt, ProtocolSpec::RingTimeOpt],
            families: vec![Family::Clique, Family::Cycle],
            sizes: vec![64, 2000, 40_000],
            max_edges: 1 << 20,
            ..SweepSpec::default()
        };
        let options = TrialOptions::default();
        let cell = |protocol, family, size| CellSpec {
            protocol,
            family,
            size,
            fault: super::super::spec::FaultSpec::None,
        };

        let aot = cell(ProtocolSpec::SpaceOpt, Family::Clique, 64);
        assert!(spec.cell_skip_reason(&aot).is_none());
        let graph = Family::Clique.generate(64, 1);
        let runner = prepare_cell(&spec, &aot, Some(&graph));
        assert_eq!(runner.engine(&options), Engine::Dense);

        let count = cell(ProtocolSpec::SpaceOpt, Family::Clique, 40_000);
        assert!(spec.cell_is_count(&count));
        assert!(spec.cell_skip_reason(&count).is_none());
        let runner = prepare_cell(&spec, &count, None);
        assert_eq!(runner.engine(&options), Engine::Count);

        let lazy = cell(ProtocolSpec::RingTimeOpt, Family::Cycle, 2000);
        assert!(spec.cell_skip_reason(&lazy).is_none());
        let graph = Family::Cycle.generate(2000, 1);
        let runner = prepare_cell(&spec, &lazy, Some(&graph));
        assert_eq!(runner.engine(&options), Engine::LazyDense);

        // Off their home families both protocols are skipped, not run.
        assert!(spec
            .cell_skip_reason(&cell(ProtocolSpec::SpaceOpt, Family::Cycle, 64))
            .is_some());
        assert!(spec
            .cell_skip_reason(&cell(ProtocolSpec::RingTimeOpt, Family::Clique, 64))
            .is_some());
    }

    #[test]
    fn path_like_campaign_names_are_refused() {
        for bad in ["", "..", "evil/name"] {
            let spec = SweepSpec {
                name: bad.into(),
                ..tiny_spec(bad)
            };
            let err = run_campaign(&spec, &CampaignOptions::default()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad:?}");
        }
    }

    #[test]
    fn incompatible_checkpoint_is_refused() {
        let out = temp_dir("refuse");
        let spec = tiny_spec("t2");
        run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        let mut other = spec;
        other.master_seed ^= 1;
        let err = run_campaign(
            &other,
            &CampaignOptions {
                out_dir: out.clone(),
                ..CampaignOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&out).ok();
    }
}
