//! ASCII and CSV reporting for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rendered experiment table: a title, a caption tying it to the paper,
/// column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            title: title.into(),
            caption: caption.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Caption (paper reference).
    #[must_use]
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row-major), for tests.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders an aligned ASCII table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if !self.caption.is_empty() {
            let _ = writeln!(out, "   {}", self.caption);
        }
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders the table as CSV (headers + rows, comma-separated with
    /// quoting of embedded commas/quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `dir/<slug(title)>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 && x.abs() < 1e6 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats a mean ± 95% CI pair.
#[must_use]
pub fn fmt_ci(mean: f64, half: f64) -> String {
    format!("{} ±{}", fmt_num(mean), fmt_num(half))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo Table", "Lemma 0", &["n", "value"]);
        t.push_row(vec!["16".into(), "1.5".into()]);
        t.push_row(vec!["32".into(), "3.25".into()]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Demo Table"));
        assert!(s.contains("Lemma 0"));
        assert!(s.contains("n"));
        assert!(s.contains("3.25"));
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", "", &["a", "bbbb"]);
        t.push_row(vec!["xxxxx".into(), "y".into()]);
        let s = t.render();
        // Header row must be padded to the widest cell.
        let lines: Vec<&str> = s.lines().collect();
        let header = lines.iter().find(|l| l.contains("bbbb")).unwrap();
        let data = lines.iter().find(|l| l.contains("xxxxx")).unwrap();
        assert_eq!(header.find('|'), data.find('|'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        sample().push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", "", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "q\"q".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("popele-report-test");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("n,value"));
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("demo-table"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(42.0), "42");
        assert_eq!(fmt_num(2.23456), "2.23");
        assert_eq!(fmt_num(1.5e7), "1.500e7");
        assert!(fmt_ci(10.0, 2.5).contains('±'));
    }

    #[test]
    fn cell_accessor() {
        let t = sample();
        assert_eq!(t.cell(1, 0), "32");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo Table");
        assert_eq!(t.caption(), "Lemma 0");
    }
}
