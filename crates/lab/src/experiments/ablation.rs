//! Ablations of the design choices called out in DESIGN.md.
//!
//! 1. **Fast-protocol parameters** — Theorem 24 picks the streak length
//!    `h` so ticks arrive every `Θ(B(G))` steps and runs the tournament
//!    for `α·L` levels. Sweeping `h` and `α` around the derived values
//!    shows the trade-off the proof encodes: ticking too fast (`h` small)
//!    lets low-degree nodes survive and pushes contenders into the backup
//!    phase; ticking too slowly (`h` large) wastes a constant factor of
//!    time; a small level cap (`α` small) trades fast-phase time against
//!    backup engagements.
//! 2. **Identifier length** — Theorem 21 needs `k = Θ(log n)` bits so the
//!    maximum identifier is unique w.h.p. Sweeping `k` shows the collision
//!    regime: with `k` small the token backup must resolve frequent ties
//!    (slow, `Θ(H·n·log n)`); past `Θ(log n)` bits more state buys
//!    nothing.

use crate::report::{fmt_ci, fmt_num, Table};
use crate::RunConfig;
use popele_core::params::FastParams;
use popele_core::{FastProtocol, IdentifierProtocol};
use popele_dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele_engine::{Executor, Protocol};
use popele_graph::random;
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the ablation experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![fast_params_table(cfg), identifier_bits_table(cfg)]
}

fn fast_params_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&48u32, &128u32);
    let trials = cfg.trials(8, 24);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xAB1);
    let g = random::erdos_renyi_connected(n, 0.5, seq.child(0), 100);
    let b = estimate_broadcast_time(
        &g,
        seq.child(1),
        &BroadcastConfig {
            sources: SourceStrategy::Heuristic(2),
            trials_per_source: 4,
            threads: cfg.threads,
        },
    )
    .b_estimate;
    let derived = FastParams::practical(b, g.max_degree(), g.num_edges(), g.num_nodes());

    let mut table = Table::new(
        "Ablation: fast-protocol parameters",
        format!(
            "G(n=1/2) with n={n}, B(G)≈{:.0}; derived practical params h={}, L={}, α={}",
            b, derived.h, derived.big_l, derived.alpha
        ),
        &[
            "h",
            "L",
            "α",
            "steps mean±ci",
            "backup engaged",
            "state bound",
        ],
    );

    let h_variants: Vec<u8> = [-2i32, 0, 2]
        .iter()
        .map(|d| (i32::from(derived.h) + d).clamp(1, 60) as u8)
        .collect();
    let alpha_variants = [2u32, derived.alpha, 8];
    let mut cases: Vec<FastParams> = Vec::new();
    for &h in &h_variants {
        cases.push(FastParams::new(h, derived.big_l, derived.alpha));
    }
    for &alpha in &alpha_variants {
        let p = FastParams::new(derived.h, derived.big_l, alpha);
        if !cases.contains(&p) {
            cases.push(p);
        }
    }
    cases.push(FastParams::new(derived.h, 2 * derived.big_l, derived.alpha));

    for (ci, params) in cases.into_iter().enumerate() {
        let p = FastProtocol::new(params);
        let child = SeedSeq::new(seq.child(100 + ci as u64));
        let mut steps = Summary::new();
        let mut backups = 0usize;
        for t in 0..trials {
            let mut exec = Executor::new(&g, &p, child.child(t as u64));
            let out = exec
                .run_until_stable(4_000_000_000)
                .expect("backup guarantees stabilization");
            steps.push(out.stabilization_step as f64);
            if exec.oracle().backup_count() > 0 {
                backups += 1;
            }
        }
        table.push_row(vec![
            params.h.to_string(),
            params.big_l.to_string(),
            params.alpha.to_string(),
            fmt_ci(steps.mean(), steps.ci95_halfwidth()),
            format!("{backups}/{trials}"),
            params.state_space_bound().to_string(),
        ]);
    }
    table
}

fn identifier_bits_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&48u32, &128u32);
    let trials = cfg.trials(8, 24);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xAB2);
    let g = popele_graph::families::clique(n);
    let mut table = Table::new(
        "Ablation: identifier length k",
        "Theorem 21/Lemma 22: collisions occur w.p. ≤ n/2^k; small k forces the token backup to resolve ties",
        &["k", "2^k", "steps mean±ci", "collision bound n/2^k", "state bound"],
    );
    for (i, k) in [1u32, 2, 4, 8, 12, 16].into_iter().enumerate() {
        let p = IdentifierProtocol::new(k);
        let child = SeedSeq::new(seq.child(i as u64));
        let mut steps = Summary::new();
        for t in 0..trials {
            let mut exec = Executor::new(&g, &p, child.child(t as u64));
            let out = exec
                .run_until_stable(4_000_000_000)
                .expect("token backup guarantees stabilization");
            steps.push(out.stabilization_step as f64);
        }
        let bound = (f64::from(n) / (1u64 << k) as f64).min(1.0);
        table.push_row(vec![
            k.to_string(),
            (1u64 << k).to_string(),
            fmt_ci(steps.mean(), steps.ci95_halfwidth()),
            fmt_num(bound),
            p.state_space_bound().unwrap().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_mean(t: &Table, row: usize) -> f64 {
        t.cell(
            row,
            if t.title().contains("identifier") {
                2
            } else {
                3
            },
        )
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap()
    }

    #[test]
    fn fast_ablation_produces_rows() {
        let cfg = RunConfig::default();
        let t = fast_params_table(&cfg);
        assert!(t.num_rows() >= 5);
        for row in 0..t.num_rows() {
            assert!(last_mean(&t, row) >= 1.0);
        }
    }

    #[test]
    fn tiny_identifiers_are_slower() {
        // k = 1 (constant ids, guaranteed massive ties) must be slower
        // than k = 12 (collision-free w.h.p.) on a clique.
        let cfg = RunConfig::default();
        let t = identifier_bits_table(&cfg);
        let k1 = last_mean(&t, 0);
        let k12: f64 = last_mean(&t, 4);
        assert!(
            k1 > 2.0 * k12,
            "k=1 ({k1}) should be much slower than k=12 ({k12})"
        );
    }
}
