//! Distance-`k` propagation-time lower bounds (Lemmas 13–14).
//!
//! On bounded-degree graphs, information needs `Ω(k·m)` steps to travel
//! distance `k`: Lemma 14 states `Pr[T_k(G) < k·m/(Δ·e³)] ≤ 1/n` for
//! `k ≥ ln n`. We measure `T_k` on cycles and paths, report the mean
//! against the `k·m` scale, and the empirical violation rate of the
//! Lemma 14 threshold.

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_dynamics::broadcast::{lemma14_threshold, propagation_time};
use popele_graph::{families, Graph};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the propagation experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![propagation_table(cfg)]
}

fn propagation_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&64u32, &256u32);
    let trials = cfg.trials(20, 100);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xFA);
    let mut table = Table::new(
        "Distance-k propagation times",
        "Lemma 14: Pr[T_k < k·m/(Δe³)] ≤ 1/n for k ≥ ln n; E[X(path of length k)] = k·m (Lemma 5)",
        &[
            "graph",
            "k",
            "k·m",
            "mean T_k",
            "T_k/(k·m)",
            "threshold",
            "Pr[T_k<thr]",
        ],
    );
    let cases: [(&str, Graph); 2] = [("cycle", families::cycle(n)), ("path", families::path(n))];
    for (ci, (label, g)) in cases.into_iter().enumerate() {
        let m = g.num_edges();
        for (ki, k) in [n / 4, n / 2].into_iter().enumerate() {
            let child = SeedSeq::new(seq.child((ci * 10 + ki) as u64));
            let mut times = Summary::new();
            let mut below = 0usize;
            let threshold = lemma14_threshold(k, m, g.max_degree());
            for t in 0..trials {
                let time = propagation_time(&g, 0, k, child.child(t as u64))
                    .expect("distance k exists") as f64;
                if time < threshold {
                    below += 1;
                }
                times.push(time);
            }
            let km = f64::from(k) * m as f64;
            table.push_row(vec![
                label.to_string(),
                k.to_string(),
                fmt_num(km),
                fmt_num(times.mean()),
                fmt_num(times.mean() / km),
                fmt_num(threshold),
                fmt_num(below as f64 / trials as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma14_rarely_violated() {
        let cfg = RunConfig::default();
        let t = propagation_table(&cfg);
        for row in 0..t.num_rows() {
            let violation: f64 = t.cell(row, 6).parse().unwrap();
            // Lemma 14 allows probability 1/n = 1/64; Monte-Carlo noise
            // with 20 trials makes 0.05 the finest resolution.
            assert!(violation <= 0.1, "row {row}: violation rate {violation}");
        }
    }

    #[test]
    fn propagation_scales_with_km() {
        // Mean T_k should be a constant multiple of k·m (the shortest
        // path must be sampled in order; Lemma 5 gives E = k·m for a
        // single path, and many paths give a smaller constant).
        let cfg = RunConfig::default();
        let t = propagation_table(&cfg);
        for row in 0..t.num_rows() {
            let ratio: f64 = t.cell(row, 4).parse().unwrap();
            assert!(
                ratio > 0.05 && ratio < 2.0,
                "row {row}: T_k/(k·m) = {ratio} out of expected band"
            );
        }
    }
}
