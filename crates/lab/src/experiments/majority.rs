//! Exact majority on graphs — the Section 8 extension experiment.
//!
//! The walking four-state majority protocol
//! ([`popele_core::majority`]) reuses the token mechanics of Theorem 16,
//! so its stabilization time should track the same driver — the
//! worst-case hitting time `H(G)` — as the leader-election baseline. This
//! experiment measures both on each family and reports their ratio, plus
//! the margin-dependence of majority (closer votes → more surviving
//! strong tokens → slightly longer runs, never wrong answers).

use crate::experiments::protocol_stats;
use crate::report::{fmt_ci, fmt_num, Table};
use crate::workloads::Family;
use crate::RunConfig;
use popele_core::{MajorityProtocol, TokenProtocol};
use popele_engine::Executor;
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the majority experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![family_table(cfg), margin_table(cfg)]
}

fn family_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&32u32, &96u32);
    let trials = cfg.trials(6, 20);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x3A30);
    let mut table = Table::new(
        "Majority vs leader election across families",
        "Section 8 extension: the walking 4-state majority shares the token protocol's H(G)·n·log n driver",
        &[
            "family", "n", "majority steps", "election steps", "ratio", "correct",
        ],
    );
    for (i, family) in [Family::Clique, Family::Cycle, Family::Star, Family::Torus]
        .into_iter()
        .enumerate()
    {
        let g = family.generate(n, seq.child(i as u64));
        let nn = g.num_nodes();
        let a_count = (2 * nn).div_ceil(3); // ~2/3 majority for A
        let p = MajorityProtocol::new(a_count, nn);
        let child = SeedSeq::new(seq.child(100 + i as u64));
        let mut steps = Summary::new();
        let mut correct = 0usize;
        for t in 0..trials {
            let mut exec = Executor::new(&g, &p, child.child(t as u64));
            let out = exec.run_until_stable(4_000_000_000).expect("stabilizes");
            steps.push(out.stabilization_step as f64);
            if exec.states().iter().all(|s| s.is_a()) {
                correct += 1;
            }
        }
        let election = protocol_stats(
            &g,
            &TokenProtocol::all_candidates(),
            seq.child(200 + i as u64),
            trials,
            cfg.threads,
            false,
        );
        table.push_row(vec![
            family.label().to_string(),
            nn.to_string(),
            fmt_ci(steps.mean(), steps.ci95_halfwidth()),
            fmt_ci(election.steps.mean(), election.steps.ci95_halfwidth()),
            fmt_num(steps.mean() / election.steps.mean()),
            format!("{correct}/{trials}"),
        ]);
    }
    table
}

fn margin_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&33u32, &99u32);
    let trials = cfg.trials(8, 30);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x3A31);
    let g = popele_graph::families::cycle(n);
    let mut table = Table::new(
        "Majority margin dependence",
        "Narrower margins leave fewer surviving strong tokens to convert the weak remainder — slower, never wrong",
        &["A votes", "B votes", "margin", "steps mean±ci", "wrong outcomes"],
    );
    // Margins from landslide to one-vote.
    let majorities = [(3 * n).div_ceil(4), (2 * n).div_ceil(3), n / 2 + 1];
    for (i, a_count) in majorities.into_iter().enumerate() {
        let p = MajorityProtocol::new(a_count, n);
        assert!(p.majority_is_a());
        let child = SeedSeq::new(seq.child(i as u64));
        let mut steps = Summary::new();
        let mut wrong = 0usize;
        for t in 0..trials {
            let mut exec = Executor::new(&g, &p, child.child(t as u64));
            let out = exec.run_until_stable(4_000_000_000).expect("stabilizes");
            steps.push(out.stabilization_step as f64);
            if !exec.states().iter().all(|s| s.is_a()) {
                wrong += 1;
            }
        }
        table.push_row(vec![
            a_count.to_string(),
            (n - a_count).to_string(),
            (2 * a_count - n).to_string(),
            fmt_ci(steps.mean(), steps.ci95_halfwidth()),
            wrong.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_always_correct() {
        let cfg = RunConfig::default();
        let t = family_table(&cfg);
        for row in 0..t.num_rows() {
            let correct = t.cell(row, 5);
            let (got, total) = correct.split_once('/').unwrap();
            assert_eq!(got, total, "row {row}: some trial decided wrongly");
        }
    }

    #[test]
    fn margins_never_wrong() {
        let cfg = RunConfig::default();
        let t = margin_table(&cfg);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 4), "0", "row {row}");
        }
    }

    #[test]
    fn narrow_margin_not_faster_than_landslide() {
        let cfg = RunConfig::default();
        let t = margin_table(&cfg);
        let landslide: f64 = t
            .cell(0, 3)
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let narrow: f64 = t
            .cell(t.num_rows() - 1, 3)
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            narrow >= 0.5 * landslide,
            "narrow {narrow} vs landslide {landslide}: wildly inverted"
        );
    }
}
