//! Conductance dependence on regular graphs (Corollary 25 and the
//! "Regular" rows of Table 1).
//!
//! Corollary 25: on a regular graph with conductance `φ = β/Δ`, the fast
//! protocol stabilizes in `O(φ⁻¹·n·log² n)` steps using
//! `O(log n · (log log n − log φ))` states. We compare regular families
//! spanning three conductance regimes at matched degree and size:
//!
//! * random 4-regular graphs — expanders, `φ = Θ(1)`;
//! * hypercubes — `φ = Θ(1/log n)`;
//! * 2-D tori — `φ = Θ(1/√n)`;
//! * cycles — `φ = Θ(1/n)`;
//!
//! and check that `steps·φ/(n·log² n)` stays within a constant band while
//! raw times differ by orders of magnitude — i.e. the `φ⁻¹` factor
//! explains the spread, as the corollary predicts.

use crate::report::{fmt_ci, fmt_num, Table};
use crate::RunConfig;
use popele_core::params::FastParams;
use popele_core::FastProtocol;
use popele_dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele_engine::monte_carlo::TrialStats;
use popele_graph::properties::conductance_bounds;
use popele_graph::{families, random, Graph};
use popele_math::rng::SeedSeq;

/// Runs the conductance experiment.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![corollary25_table(cfg)]
}

fn regular_cases(n: u32, seed: u64) -> Vec<(&'static str, Graph, &'static str)> {
    let side = (f64::from(n).sqrt().round() as u32).max(4);
    let dim = (32 - n.leading_zeros()).max(3) - 1;
    vec![
        (
            "rand-4-regular",
            random::random_regular_connected(n, 4, seed, 200),
            "Θ(1)",
        ),
        ("hypercube", families::hypercube(dim), "Θ(1/log n)"),
        ("torus", families::torus(side, side), "Θ(1/√n)"),
        ("cycle", families::cycle(n), "Θ(1/n)"),
    ]
}

fn corollary25_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&64u32, &256u32);
    let trials = cfg.trials(6, 15);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xC03);
    let mut table = Table::new(
        "Corollary 25: fast protocol vs conductance on regular graphs",
        "steps·φ/(n·log₂²n) should sit in a constant band while raw times spread by φ⁻¹; φ estimated spectrally (Cheeger midpoint)",
        &[
            "family", "n", "φ est", "paper φ", "B(G)", "fast steps mean±ci",
            "steps·φ/(n·log²n)",
        ],
    );
    for (i, (label, g, phi_paper)) in regular_cases(n, seq.child(0)).into_iter().enumerate() {
        let (phi_lo, phi_hi) = conductance_bounds(&g);
        let phi = (phi_lo * phi_hi).sqrt().max(1e-9); // geometric midpoint
        let child = seq.child(10 + i as u64);
        let b = estimate_broadcast_time(
            &g,
            child,
            &BroadcastConfig {
                sources: SourceStrategy::Heuristic(2),
                trials_per_source: 4,
                threads: cfg.threads,
            },
        )
        .b_estimate;
        let p = FastProtocol::new(FastParams::practical(
            b,
            g.max_degree(),
            g.num_edges(),
            g.num_nodes(),
        ));
        let stats: TrialStats =
            crate::experiments::protocol_stats(&g, &p, child ^ 0xFEED, trials, cfg.threads, false);
        let nf = f64::from(g.num_nodes());
        let log2n = nf.log2();
        table.push_row(vec![
            label.to_string(),
            g.num_nodes().to_string(),
            fmt_num(phi),
            phi_paper.to_string(),
            fmt_num(b),
            fmt_ci(stats.steps.mean(), stats.steps.ci95_halfwidth()),
            fmt_num(stats.steps.mean() * phi / (nf * log2n * log2n)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_times_in_constant_band() {
        let cfg = RunConfig::default();
        let t = corollary25_table(&cfg);
        let mut normalized = Vec::new();
        let mut raw_means = Vec::new();
        for row in 0..t.num_rows() {
            normalized.push(t.cell(row, 6).parse::<f64>().unwrap());
            raw_means.push(
                t.cell(row, 5)
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .unwrap(),
            );
        }
        // Raw times must spread widely (expander ≪ cycle)...
        let raw_spread = raw_means.iter().cloned().fold(0.0f64, f64::max)
            / raw_means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(raw_spread > 3.0, "raw spread {raw_spread} too small");
        // ...but φ-normalized times must be far tighter than the raw
        // spread (the φ⁻¹ factor explains most of the gap).
        let norm_spread = normalized.iter().cloned().fold(0.0f64, f64::max)
            / normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            norm_spread < raw_spread,
            "normalization did not tighten the band: {norm_spread} vs {raw_spread}"
        );
    }

    #[test]
    fn conductance_ordering_matches_paper() {
        // Spectral φ estimates must order the families as the paper's
        // formulas do: expander > torus > cycle and hypercube > cycle.
        // At quick-mode sizes (n = 64, torus side 8) the expander and
        // torus bands genuinely overlap within the Cheeger-midpoint
        // estimator's slack, so that comparison carries a tolerance.
        let cfg = RunConfig::default();
        let t = corollary25_table(&cfg);
        let phi: Vec<f64> = (0..t.num_rows())
            .map(|r| t.cell(r, 2).parse().unwrap())
            .collect();
        assert!(phi[0] > 0.8 * phi[2], "expander vs torus: {phi:?}");
        assert!(phi[1] > phi[3], "hypercube vs cycle: {phi:?}");
        assert!(phi[2] > phi[3], "torus vs cycle: {phi:?}");
    }
}
