//! One module per reproduced display item / theorem family.

pub mod ablation;
pub mod broadcast;
pub mod clocks;
pub mod conductance;
pub mod dense;
pub mod engine;
pub mod faults;
pub mod lowerbound;
pub mod majority;
pub mod pareto;
pub mod propagation;
pub mod renitent;
pub mod stabilize;
pub mod table1;
pub mod walks;

use popele_engine::monte_carlo::{run_trials_auto, TrialOptions, TrialStats};
use popele_engine::Protocol;
use popele_graph::Graph;

/// Shared helper: Monte-Carlo stabilization statistics for a protocol on
/// a graph.
///
/// Runs on the compiled dense engine whenever the protocol's reachable
/// state space fits the `u16` id budget (token, star, majority, and
/// small-parameter fast instances), falling back to the generic engine
/// otherwise (identifier, large fast parameterizations). The two engines
/// are trace-identical per seed, so this changes wall-clock time only —
/// which is what makes the full-mode sweeps at paper scale feasible.
pub(crate) fn protocol_stats<P: Protocol + Clone>(
    g: &Graph,
    p: &P,
    master_seed: u64,
    trials: usize,
    threads: usize,
    census: bool,
) -> TrialStats {
    let results = run_trials_auto(
        g,
        p,
        master_seed,
        TrialOptions {
            trials,
            max_steps: 4_000_000_000,
            census,
            threads,
            ..TrialOptions::default()
        },
    );
    TrialStats::from_results(&results)
}
