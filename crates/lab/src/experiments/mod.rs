//! One module per reproduced display item / theorem family.

pub mod ablation;
pub mod broadcast;
pub mod clocks;
pub mod conductance;
pub mod dense;
pub mod lowerbound;
pub mod majority;
pub mod propagation;
pub mod renitent;
pub mod table1;
pub mod walks;

use popele_engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
use popele_engine::Protocol;
use popele_graph::Graph;

/// Shared helper: Monte-Carlo stabilization statistics for a protocol on
/// a graph.
pub(crate) fn protocol_stats<P: Protocol>(
    g: &Graph,
    p: &P,
    master_seed: u64,
    trials: usize,
    threads: usize,
    census: bool,
) -> TrialStats {
    let results = run_trials(
        g,
        p,
        master_seed,
        TrialOptions {
            trials,
            max_steps: 4_000_000_000,
            census,
            threads,
        },
    );
    TrialStats::from_results(&results)
}
