//! Table 1: the stabilization-time / state-count landscape across graph
//! families and protocols.
//!
//! For each family of the paper's Table 1 and each implemented protocol
//! (6-state token baseline, identifier protocol, fast space-efficient
//! protocol) we measure mean stabilization steps across a size sweep plus
//! the number of distinct states actually used, then fit growth exponents.
//! The paper's prediction per row is carried in the caption: the *order*
//! of the protocols (who is faster, by roughly what factor) is the
//! reproduced quantity — absolute constants are implementation-specific.

use crate::experiments::protocol_stats;
use crate::report::{fmt_ci, fmt_num, Table};
use crate::workloads::{broadcast_guess, Family};
use crate::RunConfig;
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{FastProtocol, IdentifierProtocol, TokenProtocol};
use popele_dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele_engine::monte_carlo::TrialStats;
use popele_graph::Graph;
use popele_math::fit::power_fit;
use popele_math::rng::SeedSeq;

/// Runs the Table 1 reproduction.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let mut tables: Vec<Table> = Family::TABLE1
        .iter()
        .map(|f| family_table(cfg, *f))
        .collect();
    tables.push(star_row(cfg));
    tables
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Contender {
    Token,
    Identifier,
    Fast,
}

impl Contender {
    const ALL: [Contender; 3] = [Contender::Token, Contender::Identifier, Contender::Fast];

    fn label(self) -> &'static str {
        match self {
            Contender::Token => "token (6-state)",
            Contender::Identifier => "identifier",
            Contender::Fast => "fast",
        }
    }

    fn paper_states(self) -> &'static str {
        match self {
            Contender::Token => "O(1)",
            Contender::Identifier => "O(n^4)",
            Contender::Fast => "O(log^2 n)",
        }
    }
}

fn measure(
    cfg: &RunConfig,
    c: Contender,
    g: &Graph,
    b_estimate: f64,
    seed: u64,
    census: bool,
    trials: usize,
) -> TrialStats {
    match c {
        Contender::Token => {
            let p = TokenProtocol::all_candidates();
            protocol_stats(g, &p, seed, trials, cfg.threads, census)
        }
        Contender::Identifier => {
            let p = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
            protocol_stats(g, &p, seed, trials, cfg.threads, census)
        }
        Contender::Fast => {
            let params =
                FastParams::practical(b_estimate, g.max_degree(), g.num_edges(), g.num_nodes());
            let p = FastProtocol::new(params);
            protocol_stats(g, &p, seed, trials, cfg.threads, census)
        }
    }
}

fn family_table(cfg: &RunConfig, family: Family) -> Table {
    let sizes: &[u32] = cfg.pick(&[16u32, 24, 32][..], &[32u32, 64, 128, 256][..]);
    let trials = cfg.trials(5, 15);
    let seq = SeedSeq::new(cfg.master_seed ^ u64::from(family.label().len() as u32) ^ 0x7A);
    let mut table = Table::new(
        format!("Table 1 row: {}", family.label()),
        format!("paper expectation: {}", family.expectation()),
        &[
            "protocol",
            "n",
            "m",
            "steps mean±ci",
            "median",
            "timeouts",
            "states used",
        ],
    );
    for c in Contender::ALL {
        let mut points = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let g = family.generate(n, seq.child(i as u64));
            // Fast protocol parameters come from a coarse B(G) estimate
            // (only its log2 matters); refine the a-priori guess with a
            // tiny measurement.
            let b_estimate = if c == Contender::Fast {
                estimate_broadcast_time(
                    &g,
                    seq.child(500 + i as u64),
                    &BroadcastConfig {
                        sources: SourceStrategy::Heuristic(1),
                        trials_per_source: 2,
                        threads: cfg.threads,
                    },
                )
                .b_estimate
            } else {
                broadcast_guess(&g)
            };
            let census = i == 0; // census only at the smallest size
            let stats = measure(
                cfg,
                c,
                &g,
                b_estimate,
                seq.child(1000 + (c as u64) * 100 + i as u64),
                census,
                trials,
            );
            if !stats.steps.is_empty() {
                points.push((f64::from(g.num_nodes()), stats.steps.mean().max(1.0)));
            }
            table.push_row(vec![
                c.label().to_string(),
                g.num_nodes().to_string(),
                g.num_edges().to_string(),
                fmt_ci(stats.steps.mean(), stats.steps.ci95_halfwidth()),
                if stats.steps.is_empty() {
                    "-".into()
                } else {
                    fmt_num(stats.steps.median())
                },
                stats.timeouts.to_string(),
                stats
                    .max_distinct_states
                    .map_or_else(|| format!("bound {}", c.paper_states()), |s| s.to_string()),
            ]);
        }
        if points.len() >= 2 {
            let fit = power_fit(&points);
            table.push_row(vec![
                format!("{} fit", c.label()),
                String::new(),
                String::new(),
                format!("n^{}", fmt_num(fit.exponent)),
                format!("R² {}", fmt_num(fit.r_squared)),
                String::new(),
                c.paper_states().to_string(),
            ]);
        }
    }
    table
}

/// The "Stars: O(1) time, O(1) states" row needs its own protocol.
fn star_row(cfg: &RunConfig) -> Table {
    use popele_core::StarProtocol;
    let sizes: &[u32] = cfg.pick(&[16u32, 64, 256][..], &[64u32, 256, 1024, 4096][..]);
    let trials = cfg.trials(10, 50);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x57A7);
    let mut table = Table::new(
        "Table 1 row: stars (trivial protocol)",
        "paper: O(1) stabilization with O(1) states — every trial stabilizes in exactly 1 interaction",
        &["n", "steps mean", "steps max", "states used"],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let g = popele_graph::families::star(n);
        let p = StarProtocol::new();
        let stats = protocol_stats(&g, &p, seq.child(i as u64), trials, cfg.threads, true);
        table.push_row(vec![
            n.to_string(),
            fmt_num(stats.steps.mean()),
            fmt_num(stats.steps.max()),
            stats.max_distinct_states.unwrap_or(0).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_row_is_constant_time() {
        let cfg = RunConfig::default();
        let t = star_row(&cfg);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 1), "1", "mean steps must be exactly 1");
            assert_eq!(t.cell(row, 2), "1", "max steps must be exactly 1");
            let states: usize = t.cell(row, 3).parse().unwrap();
            assert!(states <= 3);
        }
    }

    #[test]
    fn clique_row_orders_protocols() {
        // On cliques the identifier/fast protocols (quasilinear) must beat
        // the token baseline (quadratic) at the largest quick size.
        let cfg = RunConfig::default();
        let t = family_table(&cfg, Family::Clique);
        // Collect (protocol, n, mean) triples from data rows.
        let mut token_last = None;
        let mut id_last = None;
        for row in 0..t.num_rows() {
            let proto = t.cell(row, 0);
            if proto.ends_with("fit") {
                continue;
            }
            let mean: f64 = t
                .cell(row, 3)
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap();
            match proto {
                "token (6-state)" => token_last = Some(mean),
                "identifier" => id_last = Some(mean),
                _ => {}
            }
        }
        let token = token_last.unwrap();
        let id = id_last.unwrap();
        assert!(
            token > id,
            "token baseline ({token}) should be slower than identifier ({id}) on cliques"
        );
    }

    #[test]
    fn cycle_row_runs() {
        let cfg = RunConfig::default();
        let t = family_table(&cfg, Family::Cycle);
        assert!(t.num_rows() >= 9, "3 protocols × 3 sizes (+fits)");
        // No timeouts in quick mode.
        for row in 0..t.num_rows() {
            if t.cell(row, 0).ends_with("fit") {
                continue;
            }
            assert_eq!(t.cell(row, 5), "0", "row {row} timed out");
        }
    }
}
