//! Broadcast-time bounds (Theorem 6, Lemma 12, Theorem 15).
//!
//! Two views:
//!
//! 1. **Bound sandwich** — for each family the measured `B(G)` must lie
//!    between the Lemma 12 lower bound `(m/Δ)·ln(n−1)` and the Theorem 6
//!    upper bound `O(m·min(log n/β, log n + D))` evaluated with explicit
//!    constants (Lemmas 8 and 10) and exact `β` where known.
//! 2. **Scaling** — fitted growth exponents: `Θ(n log n)` on cliques and
//!    stars, `Θ(n²)` on cycles, `Θ(n·max(D, log n)) = Θ(n^{1.5})` on
//!    2-D tori (Theorem 15 for bounded-degree graphs).

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_dynamics::broadcast::{
    estimate_broadcast_time, lower_bound_degree, upper_bound_diameter, upper_bound_expansion,
    BroadcastConfig, SourceStrategy,
};
use popele_graph::properties::{diameter, KnownExpansion};
use popele_graph::{families, Graph};
use popele_math::fit::power_fit_with_log_factor;
use popele_math::rng::SeedSeq;

/// Runs the broadcast experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![bounds_table(cfg), scaling_table(cfg)]
}

struct BoundCase {
    label: &'static str,
    graph: Graph,
    beta: Option<f64>,
}

fn bound_cases(n: u32) -> Vec<BoundCase> {
    let side = (f64::from(n).sqrt().round() as u32).max(3);
    let dim = (32 - n.leading_zeros()).max(3) - 1;
    vec![
        BoundCase {
            label: "clique",
            graph: families::clique(n),
            beta: Some(KnownExpansion::Clique(n).value()),
        },
        BoundCase {
            label: "cycle",
            graph: families::cycle(n),
            beta: Some(KnownExpansion::Cycle(n).value()),
        },
        BoundCase {
            label: "star",
            graph: families::star(n),
            beta: Some(KnownExpansion::Star(n).value()),
        },
        BoundCase {
            label: "torus",
            graph: families::torus(side, side),
            beta: None, // use the diameter bound
        },
        BoundCase {
            label: "hypercube",
            graph: families::hypercube(dim),
            beta: Some(KnownExpansion::Hypercube(dim).value()),
        },
    ]
}

fn measure_b(g: &Graph, seed: u64, cfg: &RunConfig) -> f64 {
    let bc = BroadcastConfig {
        sources: SourceStrategy::Heuristic(*cfg.pick(&3usize, &6usize)),
        trials_per_source: cfg.trials(6, 20),
        threads: cfg.threads,
    };
    estimate_broadcast_time(g, seed, &bc).b_estimate
}

fn bounds_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&48u32, &192u32);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xB0);
    let mut table = Table::new(
        "Broadcast time vs analytic bounds",
        "Theorem 6 upper bounds (Lemmas 8/10 constants) and Lemma 12 lower bound must sandwich measured B(G)",
        &[
            "family", "n", "m", "D", "B measured", "lower (L12)", "upper (T6)",
            "B/lower", "B/upper",
        ],
    );
    for (i, case) in bound_cases(n).into_iter().enumerate() {
        let g = &case.graph;
        let d = diameter(g);
        let b = measure_b(g, seq.child(i as u64), cfg);
        let lower = lower_bound_degree(g.num_edges(), g.num_nodes(), g.max_degree());
        let by_diam = upper_bound_diameter(g.num_edges(), g.num_nodes(), d);
        let upper = match case.beta {
            Some(beta) => by_diam.min(upper_bound_expansion(g.num_edges(), g.num_nodes(), beta)),
            None => by_diam,
        };
        table.push_row(vec![
            case.label.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            d.to_string(),
            fmt_num(b),
            fmt_num(lower),
            fmt_num(upper),
            fmt_num(b / lower),
            fmt_num(b / upper),
        ]);
    }
    table
}

fn scaling_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[16u32, 32, 64][..], &[32u32, 64, 128, 256, 512][..]);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xB1);
    let mut table = Table::new(
        "Broadcast time scaling",
        "Theorem 15: Θ(n·max(D, log n)) for bounded degree; clique/star Θ(n log n); cycle Θ(n²); exponent fitted after dividing out log n",
        &["family", "fitted exponent", "R²", "paper exponent"],
    );
    #[allow(clippy::type_complexity)]
    let cases: [(&str, fn(u32) -> Graph, f64); 4] = [
        ("clique", families::clique as fn(u32) -> Graph, 1.0),
        ("star", families::star, 1.0),
        ("cycle", families::cycle, 2.0),
        (
            "torus",
            |n| {
                let side = (f64::from(n).sqrt().round() as u32).max(3);
                families::torus(side, side)
            },
            1.5,
        ),
    ];
    for (i, (label, make, paper_exp)) in cases.into_iter().enumerate() {
        let mut points = Vec::new();
        for (j, &n) in sizes.iter().enumerate() {
            let g = make(n);
            let b = measure_b(&g, seq.child((i * 100 + j) as u64), cfg);
            points.push((f64::from(g.num_nodes()), b));
        }
        // Cliques and stars are Θ(n log n): divide out one log factor.
        // Cycles/tori are pure powers (D ≫ log n): fit directly.
        let log_power = if paper_exp == 1.0 { 1.0 } else { 0.0 };
        let fit = power_fit_with_log_factor(&points, log_power);
        table.push_row(vec![
            label.to_string(),
            fmt_num(fit.exponent),
            fmt_num(fit.r_squared),
            fmt_num(paper_exp),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_sandwich_measured_b() {
        let cfg = RunConfig::default();
        let t = bounds_table(&cfg);
        for row in 0..t.num_rows() {
            let ratio_lower: f64 = t.cell(row, 7).parse().unwrap();
            let ratio_upper: f64 = t.cell(row, 8).parse().unwrap();
            assert!(
                ratio_lower >= 0.8,
                "row {row}: measured below Lemma 12 lower bound ({ratio_lower})"
            );
            // Lemma 8/10 constants hold "for all n ≥ n₀"; at quick-mode
            // sizes allow modest finite-size slack.
            assert!(
                ratio_upper <= 1.3,
                "row {row}: measured above Theorem 6 upper bound ({ratio_upper})"
            );
        }
    }

    #[test]
    fn scaling_exponents_match_paper() {
        let cfg = RunConfig::default();
        let t = scaling_table(&cfg);
        for row in 0..t.num_rows() {
            let fitted: f64 = t.cell(row, 1).parse().unwrap();
            let paper: f64 = t.cell(row, 3).parse().unwrap();
            assert!(
                (fitted - paper).abs() < 0.35,
                "row {row}: fitted {fitted} vs paper {paper}"
            );
        }
    }
}
