//! Streak-clock statistics (Section 5.1, Lemmas 26–29).
//!
//! Regenerates three views of the clock subroutine:
//!
//! 1. **Lemma 27a** — the expected number of interactions per tick is
//!    `2^{h+1} − 2`;
//! 2. **Lemma 28** — the number of interactions for `ℓ ≥ ln n` ticks
//!    concentrates in `[E[R]/2, 4·E[R]]`;
//! 3. **Lemma 27b / 29** — measured on a star graph, a node of degree `d`
//!    needs `E[K]·m/d` scheduler *steps* per tick: the centre ticks
//!    `Θ(n)` times faster than a leaf, the asymmetry that drives the fast
//!    protocol's degree filtering.

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_core::clock::{sample_interactions_per_tick, StreakClock};
use popele_engine::EdgeScheduler;
use popele_graph::families;
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the clock experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![
        interactions_per_tick(cfg),
        concentration(cfg),
        steps_by_degree(cfg),
    ]
}

fn interactions_per_tick(cfg: &RunConfig) -> Table {
    let trials = cfg.trials(4_000, 40_000);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xC10C);
    let mut table = Table::new(
        "Clock ticks: interactions per tick",
        "Lemma 27a: E[K] = 2^{h+1} − 2; Lemma 26 sandwiches K between geometrics",
        &[
            "h",
            "E[K] paper",
            "mean K measured",
            "ratio",
            "p95 measured",
        ],
    );
    for (i, h) in [2u8, 4, 6, 8].into_iter().enumerate() {
        let mut rng = seq.child_rng(i as u64);
        let samples: Summary = (0..trials)
            .map(|_| sample_interactions_per_tick(h, &mut rng) as f64)
            .collect();
        let expected = StreakClock::new(h).expected_interactions_per_tick();
        table.push_row(vec![
            h.to_string(),
            fmt_num(expected),
            fmt_num(samples.mean()),
            fmt_num(samples.mean() / expected),
            fmt_num(samples.quantile(0.95)),
        ]);
    }
    table
}

fn concentration(cfg: &RunConfig) -> Table {
    let trials = cfg.trials(600, 6_000);
    let h = 4u8;
    let seq = SeedSeq::new(cfg.master_seed ^ 0xC20C);
    // Lemma 28 tails at λ = 1/2 (lower, threshold E/4) and λ = 2 (upper,
    // threshold 8E): Pr ≤ exp(−l·c(λ)) with c(λ) = λ − 1 − ln λ.
    let c = |lambda: f64| lambda - 1.0 - lambda.ln();
    let mut table = Table::new(
        "Clock ticks: concentration of R over l ticks",
        "Lemma 28: Pr[R ≤ λE/2] and Pr[R ≥ 4λE] decay like exp(−l·c(λ)); shown at λ = 1/2 and λ = 2",
        &[
            "l",
            "E[R]",
            "mean R",
            "Pr[R ≤ E/4]",
            "bound(1/2)",
            "Pr[R ≥ 8E]",
            "bound(2)",
        ],
    );
    for (i, ell) in [4u64, 8, 16, 32].into_iter().enumerate() {
        let mut rng = seq.child_rng(i as u64);
        let expected = (f64::from(1u32 << (h + 1)) - 2.0) * ell as f64;
        let mut below = 0usize;
        let mut above = 0usize;
        let mut sum = 0.0;
        for _ in 0..trials {
            let r: u64 = (0..ell)
                .map(|_| sample_interactions_per_tick(h, &mut rng))
                .sum();
            let r = r as f64;
            sum += r;
            if r <= expected / 4.0 {
                below += 1;
            }
            if r >= 8.0 * expected {
                above += 1;
            }
        }
        table.push_row(vec![
            ell.to_string(),
            fmt_num(expected),
            fmt_num(sum / trials as f64),
            fmt_num(below as f64 / trials as f64),
            fmt_num((-(ell as f64) * c(0.5)).exp()),
            fmt_num(above as f64 / trials as f64),
            fmt_num((-(ell as f64) * c(2.0)).exp()),
        ]);
    }
    table
}

fn steps_by_degree(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&32u32, &128u32);
    let ell = 8u64;
    let h = 3u8;
    let trials = cfg.trials(20, 100);
    let g = families::star(n);
    let m = g.num_edges();
    let seq = SeedSeq::new(cfg.master_seed ^ 0xC30C);

    // Measure steps for the centre (node 0) and one leaf (node 1) to
    // complete `ell` streaks each, per Lemma 29.
    let mut centre = Summary::new();
    let mut leaf = Summary::new();
    for i in 0..trials {
        let mut sched = EdgeScheduler::new(&g, seq.child(i as u64));
        let mut clocks = [StreakClock::new(h), StreakClock::new(h)];
        let mut ticks = [0u64, 0u64];
        let mut done = [None::<u64>, None::<u64>];
        while done.iter().any(Option::is_none) {
            let (a, b) = sched.next_pair();
            for (node, clock_idx) in [(a, true), (b, false)] {
                let idx = match node {
                    0 => 0usize,
                    1 => 1usize,
                    _ => continue,
                };
                if done[idx].is_some() {
                    continue;
                }
                if clocks[idx].on_interaction(clock_idx) && {
                    ticks[idx] += 1;
                    ticks[idx] == ell
                } {
                    done[idx] = Some(sched.steps());
                }
            }
        }
        centre.push(done[0].unwrap() as f64);
        leaf.push(done[1].unwrap() as f64);
    }

    let clock = StreakClock::new(h);
    let expect = |d: u32| clock.expected_steps_per_tick(d, m) * ell as f64;
    let mut table = Table::new(
        "Clock ticks: steps per tick by degree (star graph)",
        "Lemma 27b/29: E[S(d, l)] = (2^{h+1}−2)·l·m/d — the centre ticks Θ(n) times faster",
        &["node", "degree", "E[S] paper", "mean S measured", "ratio"],
    );
    table.push_row(vec![
        "centre".into(),
        (n - 1).to_string(),
        fmt_num(expect(n - 1)),
        fmt_num(centre.mean()),
        fmt_num(centre.mean() / expect(n - 1)),
    ]);
    table.push_row(vec![
        "leaf".into(),
        "1".into(),
        fmt_num(expect(1)),
        fmt_num(leaf.mean()),
        fmt_num(leaf.mean() / expect(1)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let cfg = RunConfig::default();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.num_rows() >= 2, "{} empty", t.title());
        }
    }

    #[test]
    fn tick_means_match_lemma27a() {
        let cfg = RunConfig::default();
        let t = interactions_per_tick(&cfg);
        for row in 0..t.num_rows() {
            let ratio: f64 = t.cell(row, 3).parse().unwrap();
            assert!((ratio - 1.0).abs() < 0.1, "h row {row}: ratio {ratio}");
        }
    }

    #[test]
    fn concentration_tails_respect_lemma28() {
        let cfg = RunConfig::default();
        let t = concentration(&cfg);
        for row in 0..t.num_rows() {
            let below: f64 = t.cell(row, 3).parse().unwrap();
            let below_bound: f64 = t.cell(row, 4).parse().unwrap();
            let above: f64 = t.cell(row, 5).parse().unwrap();
            let above_bound: f64 = t.cell(row, 6).parse().unwrap();
            assert!(
                below <= below_bound + 0.05,
                "row {row}: lower tail {below} above Lemma 28 bound {below_bound}"
            );
            assert!(
                above <= above_bound + 0.05,
                "row {row}: upper tail {above} above Lemma 28 bound {above_bound}"
            );
        }
    }

    #[test]
    fn centre_ticks_much_faster_than_leaf() {
        let cfg = RunConfig::default();
        let t = steps_by_degree(&cfg);
        let centre: f64 = t.cell(0, 3).parse().unwrap();
        let leaf: f64 = t.cell(1, 3).parse().unwrap();
        assert!(
            leaf > 5.0 * centre,
            "leaf {leaf} should be much slower than centre {centre}"
        );
    }
}
