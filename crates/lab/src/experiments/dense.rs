//! Dense-random-graph lower-bound machinery (Section 7: Theorem 40,
//! Lemmas 41–44, Theorem 46's observable consequence).
//!
//! 1. **Lemma 41/42** — on `G(n, 1/2)` at `t = c·n·ln n`: influencer sets
//!    stay polynomially small (`max_v |I_t(v)| ≤ n^ε`) and many nodes
//!    remain untouched (`≥ n^{1−ε}`).
//! 2. **Lemma 44** — the multigraph of influencers `J_t(v)` has `O(log n)`
//!    internal interactions and size `n^{o(1)}` at `t = c·n·log n`.
//! 3. **Theorems 40/46** — stabilization on `G(n, 1/2)`: the identifier
//!    protocol takes `Θ(n log n)` (matching the Theorem 40 lower bound up
//!    to constants) while the constant-state token protocol takes
//!    `Θ(n² log n)` — no constant-state protocol can beat `o(n²)`
//!    (Theorem 46), and the gap between the two is the `O(n log n)` factor
//!    of Section 7's average-case discussion.

use crate::experiments::protocol_stats;
use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_core::params::identifier_bits;
use popele_core::{IdentifierProtocol, TokenProtocol};
use popele_dynamics::influence::{
    record_schedule, untouched_after, InfluenceTracker, InteractionPattern,
};
use popele_engine::EdgeScheduler;
use popele_graph::random;
use popele_math::fit::power_fit_with_log_factor;
use popele_math::rng::SeedSeq;

/// Runs the dense-graph experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![
        influence_table(cfg),
        pattern_table(cfg),
        separation_table(cfg),
    ]
}

fn influence_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[32u32, 64, 128][..], &[64u32, 128, 256, 512][..]);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xDE);
    let c = 0.2f64;
    let mut table = Table::new(
        "Influencer sets and untouched nodes on G(n, 1/2)",
        "Lemma 41: max |I_t(v)| ≤ n^ε at t = c·n·ln n; Lemma 42: ≥ n^{1−ε} nodes untouched",
        &[
            "n",
            "t",
            "max |I_t|",
            "log_n(max|I_t|)",
            "untouched",
            "log_n(untouched)",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let g = random::erdos_renyi_connected(n, 0.5, seq.child(i as u64), 100);
        let t = (c * f64::from(n) * f64::from(n).ln()) as u64;
        let mut tracker = InfluenceTracker::new(g.num_nodes());
        let mut sched = EdgeScheduler::new(&g, seq.child(1000 + i as u64));
        for _ in 0..t {
            let (u, v) = sched.next_pair();
            tracker.interact(u, v);
        }
        let max_inf = f64::from(tracker.max_influence_size());
        let untouched = untouched_after(&g, t, seq.child(2000 + i as u64)) as f64;
        let logn = f64::from(n).ln();
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            fmt_num(max_inf),
            fmt_num(max_inf.ln() / logn),
            fmt_num(untouched),
            fmt_num(if untouched > 0.0 {
                untouched.ln() / logn
            } else {
                0.0
            }),
        ]);
    }
    table
}

fn pattern_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[32u32, 64, 128][..], &[64u32, 128, 256][..]);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xDF);
    let c = 0.2f64;
    let mut table = Table::new(
        "Multigraphs of influencers on G(n, 1/2)",
        "Lemma 44: J_t(v) has ≤ c·log n internal interactions and n^{o(1)} nodes at t = c·n·log n; Lemma 45 unfolding doubles size at most per internal interaction",
        &[
            "n", "t", "|J| nodes", "internal", "internal/ln n", "unfolded nodes",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let g = random::erdos_renyi_connected(n, 0.5, seq.child(i as u64), 100);
        let t = (c * f64::from(n) * f64::from(n).ln()) as usize;
        let schedule = record_schedule(&g, t, seq.child(1000 + i as u64));
        let pattern = InteractionPattern::from_schedule(&schedule, 0, t);
        let internal = pattern.internal_interactions();
        let unfolded = pattern.unfold_fully();
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            pattern.num_nodes().to_string(),
            internal.to_string(),
            fmt_num(internal as f64 / f64::from(n).ln()),
            unfolded.num_nodes().to_string(),
        ]);
    }
    table
}

fn separation_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[16u32, 32, 64][..], &[32u32, 64, 128, 256][..]);
    let trials = cfg.trials(5, 20);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xE0);
    let mut table = Table::new(
        "Protocol separation on dense random graphs",
        "Thm 40: any protocol needs Ω(n log n) — identifier protocol is Θ(n log n); Thm 46: constant-state needs Ω(n²) — token protocol is Θ(n² log n)",
        &[
            "n", "id steps", "id/(n·ln n)", "token steps", "token/(n²·ln n)", "token/id",
        ],
    );
    let mut id_points = Vec::new();
    let mut token_points = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let g = random::erdos_renyi_connected(n, 0.5, seq.child(i as u64), 100);
        let id_p = IdentifierProtocol::new(identifier_bits(n, false));
        let token_p = TokenProtocol::all_candidates();
        let id_stats = protocol_stats(
            &g,
            &id_p,
            seq.child(100 + i as u64),
            trials,
            cfg.threads,
            false,
        );
        let token_stats = protocol_stats(
            &g,
            &token_p,
            seq.child(200 + i as u64),
            trials,
            cfg.threads,
            false,
        );
        let nf = f64::from(n);
        let id_mean = id_stats.steps.mean();
        let token_mean = token_stats.steps.mean();
        id_points.push((nf, id_mean));
        token_points.push((nf, token_mean));
        table.push_row(vec![
            n.to_string(),
            fmt_num(id_mean),
            fmt_num(id_mean / (nf * nf.ln())),
            fmt_num(token_mean),
            fmt_num(token_mean / (nf * nf * nf.ln())),
            fmt_num(token_mean / id_mean),
        ]);
    }
    let id_fit = power_fit_with_log_factor(&id_points, 1.0);
    let token_fit = power_fit_with_log_factor(&token_points, 1.0);
    table.push_row(vec![
        "fit".to_string(),
        format!("id exp {}", fmt_num(id_fit.exponent)),
        "paper: 1".to_string(),
        format!("token exp {}", fmt_num(token_fit.exponent)),
        "paper: 2".to_string(),
        String::new(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influencer_sets_polynomially_small() {
        let cfg = RunConfig::default();
        let t = influence_table(&cfg);
        for row in 0..t.num_rows() {
            let eps: f64 = t.cell(row, 3).parse().unwrap();
            assert!(
                eps < 0.95,
                "row {row}: influence exponent {eps} ≈ 1 (sets too big)"
            );
            let untouched_exp: f64 = t.cell(row, 5).parse().unwrap();
            assert!(
                untouched_exp > 0.5,
                "row {row}: untouched exponent {untouched_exp} too small"
            );
        }
    }

    #[test]
    fn internal_interactions_logarithmic() {
        let cfg = RunConfig::default();
        let t = pattern_table(&cfg);
        for row in 0..t.num_rows() {
            let per_log: f64 = t.cell(row, 4).parse().unwrap();
            assert!(
                per_log < 20.0,
                "row {row}: internal interactions {per_log}·ln n too many"
            );
        }
    }

    #[test]
    fn token_vs_identifier_separation() {
        let cfg = RunConfig::default();
        let t = separation_table(&cfg);
        let data_rows = t.num_rows() - 1;
        // The gap token/id must grow with n (Θ(n) apart in theory).
        let first: f64 = t.cell(0, 5).parse().unwrap();
        let last: f64 = t.cell(data_rows - 1, 5).parse().unwrap();
        assert!(
            last > first,
            "token/id gap should widen: first {first}, last {last}"
        );
    }
}
