//! Two-engine comparison: the generic reference executor vs the
//! compiled dense-state core, on the same protocol/graph/seed workloads.
//!
//! This experiment serves two purposes:
//!
//! 1. **Equivalence evidence** — for every workload it asserts that both
//!    engines elect the same leader at the same step (the differential
//!    contract that lets every other experiment switch engines freely);
//! 2. **Throughput accounting** — it reports interactions/second for
//!    both engines and the resulting speedup, the number that makes the
//!    paper-scale (`n = 10⁵–10⁶`) sweeps feasible on the compiled path.

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_core::{MajorityProtocol, TokenProtocol};
use popele_engine::{CompiledProtocol, DenseExecutor, Executor, Protocol};
use popele_graph::{families, Graph};
use popele_math::rng::SeedSeq;
use std::time::Instant;

/// Runs the engine-comparison experiment.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![comparison_table(cfg)]
}

/// Times `run_until_stable` for both engines on identical seeds and
/// returns `(generic_ns, dense_ns, steps, leaders_equal)`.
fn race<P: Protocol + Clone>(
    g: &Graph,
    p: &P,
    master_seed: u64,
    trials: usize,
) -> (f64, f64, u64, bool) {
    let compiled = CompiledProtocol::compile_default(p, g.num_nodes())
        .expect("engine experiment uses compilable protocols");
    let seq = SeedSeq::new(master_seed);
    let mut generic_ns = 0.0;
    let mut dense_ns = 0.0;
    let mut steps = 0u64;
    let mut equal = true;
    for t in 0..trials {
        let seed = seq.child(t as u64);
        let t0 = Instant::now();
        let a = Executor::new(g, p, seed)
            .run_until_stable(u64::MAX)
            .expect("stabilizes");
        generic_ns += t0.elapsed().as_nanos() as f64;
        let t1 = Instant::now();
        let b = DenseExecutor::new(g, &compiled, seed)
            .run_until_stable(u64::MAX)
            .expect("stabilizes");
        dense_ns += t1.elapsed().as_nanos() as f64;
        equal &= a == b;
        steps += a.stabilization_step;
    }
    (generic_ns, dense_ns, steps, equal)
}

fn comparison_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&64u32, &512u32);
    let trials = cfg.trials(3, 10);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xE46);
    let mut table = Table::new(
        "Engine comparison: generic reference vs compiled dense core",
        "same protocol/graph/seed ⇒ identical outcomes; speedup is what makes n = 10⁵–10⁶ sweeps feasible",
        &[
            "workload", "n", "|Λ|", "steps", "generic Msteps/s", "dense Msteps/s", "speedup", "outcomes equal",
        ],
    );
    let token = TokenProtocol::all_candidates();
    let majority = MajorityProtocol::new(n / 3, n);
    let workloads: Vec<(String, Graph, u64)> = vec![
        (
            format!("token/clique({n})"),
            families::clique(n),
            seq.child(0),
        ),
        (
            format!("token/cycle({n})"),
            families::cycle(n),
            seq.child(1),
        ),
        (format!("token/star({n})"), families::star(n), seq.child(2)),
    ];
    for (label, g, seed) in workloads {
        push_race_row(&mut table, &label, &g, &token, seed, trials);
    }
    let g = families::cycle(n);
    push_race_row(
        &mut table,
        &format!("majority/cycle({n})"),
        &g,
        &majority,
        seq.child(3),
        trials,
    );
    table
}

fn push_race_row<P: Protocol + Clone>(
    table: &mut Table,
    label: &str,
    g: &Graph,
    p: &P,
    seed: u64,
    trials: usize,
) {
    let states = CompiledProtocol::compile_default(p, g.num_nodes())
        .expect("compilable")
        .num_states();
    let (generic_ns, dense_ns, steps, equal) = race(g, p, seed, trials);
    let msteps = |ns: f64| steps as f64 / ns * 1e3;
    table.push_row(vec![
        label.to_string(),
        g.num_nodes().to_string(),
        states.to_string(),
        steps.to_string(),
        fmt_num(msteps(generic_ns)),
        fmt_num(msteps(dense_ns)),
        fmt_num(generic_ns / dense_ns),
        equal.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_every_workload() {
        let cfg = RunConfig::default();
        let t = comparison_table(&cfg);
        assert!(t.num_rows() >= 4);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 7), "true", "row {row}: outcomes diverged");
        }
    }

    #[test]
    fn race_reports_equal_outcomes() {
        let g = families::clique(16);
        let p = TokenProtocol::all_candidates();
        let (generic_ns, dense_ns, steps, equal) = race(&g, &p, 3, 2);
        assert!(equal);
        assert!(steps > 0);
        assert!(generic_ns > 0.0 && dense_ns > 0.0);
    }
}
