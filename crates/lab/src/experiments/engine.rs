//! Engine comparison: the generic reference executor vs the dense
//! engines (ahead-of-time compiled, lazily compiled, and count-based),
//! on the same protocol/graph/seed workloads.
//!
//! This experiment serves two purposes:
//!
//! 1. **Equivalence evidence** — for every workload it asserts that the
//!    raced engines elect the same leader at the same step (the
//!    differential contract that lets every other experiment switch
//!    engines freely);
//! 2. **Throughput accounting** — it reports interactions/second for
//!    both sides of each race and the resulting speedup: the AOT rows
//!    are what makes the paper-scale (`n = 10⁵–10⁶`) sweeps feasible,
//!    and the lazy rows are what brings the identifier protocol — the
//!    paper's flagship, previously stuck on the generic engine — onto
//!    the compiled path.
//!
//! Which engine a workload races is exactly what
//! [`popele_engine::monte_carlo::select_engine`] would pick for it, so
//! the table doubles as a selection audit.

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{FastProtocol, IdentifierProtocol, MajorityProtocol, TokenProtocol};
use popele_engine::monte_carlo::{
    run_trials_dense, run_trials_lanes, select_engine, Engine, TrialOptions, LANE_MIN_TRIALS,
};
use popele_engine::{
    compile_for_count, CompiledProtocol, CountEngine, DenseExecutor, Executor, LazyDenseExecutor,
    Protocol,
};
use popele_graph::{families, Graph};
use popele_math::rng::SeedSeq;
use std::time::Instant;

/// Runs the engine-comparison experiment.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![comparison_table(cfg)]
}

/// Times `run_until_stable` for the generic engine and the selected
/// dense engine on identical seeds; returns `(generic_ns, dense_ns,
/// states, steps, leaders_equal)` where `states` is `|Λ|` for the AOT
/// engine and the interned-state count for the lazy one.
fn race<P: Protocol + Clone>(
    g: &Graph,
    p: &P,
    engine: Engine,
    master_seed: u64,
    trials: usize,
) -> (f64, f64, usize, u64, bool) {
    let seq = SeedSeq::new(master_seed);
    let mut generic_ns = 0.0;
    let mut dense_ns = 0.0;
    let mut steps = 0u64;
    let mut equal = true;

    let compiled = matches!(engine, Engine::Dense).then(|| {
        CompiledProtocol::compile_default(p, g.num_nodes()).expect("selection said AOT compiles")
    });
    // One lazy executor reused across trials — reset keeps the pair
    // cache warm, the engine's intended Monte-Carlo usage.
    let mut lazy = matches!(engine, Engine::LazyDense).then(|| LazyDenseExecutor::new(g, p, 0));

    for t in 0..trials {
        let seed = seq.child(t as u64);
        let t0 = Instant::now();
        let a = Executor::new(g, p, seed)
            .run_until_stable(u64::MAX)
            .expect("stabilizes");
        generic_ns += t0.elapsed().as_nanos() as f64;
        let t1 = Instant::now();
        let b = match (&compiled, &mut lazy) {
            (Some(compiled), _) => DenseExecutor::new(g, compiled, seed)
                .run_until_stable(u64::MAX)
                .expect("stabilizes"),
            (_, Some(lazy)) => {
                lazy.reset(seed);
                lazy.run_until_stable(u64::MAX).expect("stabilizes")
            }
            _ => unreachable!("race is only called for dense-tier engines"),
        };
        dense_ns += t1.elapsed().as_nanos() as f64;
        equal &= a == b;
        steps += a.stabilization_step;
    }
    let states = match (&compiled, &lazy) {
        (Some(compiled), _) => compiled.num_states(),
        (_, Some(lazy)) => lazy.table().num_states(),
        _ => 0,
    };
    (generic_ns, dense_ns, states, steps, equal)
}

/// Times the generic engine against the graph-free [`CountEngine`] on a
/// clique of `n` nodes. The count engine is exact in *distribution*
/// only — no trace identity — so `equal` here means every trial on both
/// sides stabilized to a unique leader; the step-count *law* itself is
/// pinned by the distribution-level differential tests in the engine
/// crate. Returns `(generic_ns, count_ns, states, generic_steps,
/// count_steps, equal)` — two step totals, because the sides take
/// different (equidistributed) trajectories.
fn race_count<P: Protocol + Clone>(
    n: u32,
    p: &P,
    master_seed: u64,
    trials: usize,
) -> (f64, f64, usize, u64, u64, bool) {
    let g = families::clique(n);
    let seq = SeedSeq::new(master_seed);
    let compiled =
        compile_for_count(p, u64::from(n)).expect("count row needs a compiling protocol");
    // One count engine reused across trials — reset is O(|Λ|), the
    // engine's intended Monte-Carlo usage.
    let mut count = CountEngine::new(&compiled, u64::from(n), 0);
    let mut generic_ns = 0.0;
    let mut count_ns = 0.0;
    let mut generic_steps = 0u64;
    let mut count_steps = 0u64;
    let mut equal = true;

    for t in 0..trials {
        let seed = seq.child(t as u64);
        let t0 = Instant::now();
        let a = Executor::new(&g, p, seed)
            .run_until_stable(u64::MAX)
            .expect("stabilizes");
        generic_ns += t0.elapsed().as_nanos() as f64;
        let t1 = Instant::now();
        count.reset(seed);
        let b = count.run_until_stable(u64::MAX).expect("stabilizes");
        count_ns += t1.elapsed().as_nanos() as f64;
        equal &= a.leader_count == 1 && b.leader_count == 1;
        generic_steps += a.stabilization_step;
        count_steps += b.stabilization_step;
    }
    (
        generic_ns,
        count_ns,
        compiled.num_states(),
        generic_steps,
        count_steps,
        equal,
    )
}

/// Times the scalar dense engine against the lane-parallel engine on
/// identical trial seeds, single-threaded so the comparison isolates
/// lane-level parallelism. The lane engine is per-trial
/// *trace-identical* to the scalar one, so `equal` compares the full
/// per-trial result vectors — step counts and leaders, not just
/// aggregate success. Returns `(scalar_ns, lane_ns, states, steps,
/// equal)`.
fn race_lanes<P: Protocol + Clone>(
    g: &Graph,
    p: &P,
    master_seed: u64,
    trials: usize,
) -> (f64, f64, usize, u64, bool) {
    let compiled = CompiledProtocol::compile_default(p, g.num_nodes())
        .expect("lane rows need an AOT-compiling protocol");
    let options = TrialOptions {
        trials,
        max_steps: u64::MAX,
        threads: 1,
        ..TrialOptions::default()
    };
    let t0 = Instant::now();
    let scalar = run_trials_dense(g, &compiled, master_seed, options);
    let scalar_ns = t0.elapsed().as_nanos() as f64;
    let t1 = Instant::now();
    let lanes = run_trials_lanes(g, &compiled, master_seed, options);
    let lane_ns = t1.elapsed().as_nanos() as f64;
    // TrialResult equality ignores the engine-provenance tag, so this
    // is an exact per-trial trace-identity check.
    let equal = scalar == lanes;
    let steps = scalar
        .iter()
        .filter_map(|r| r.stabilization_step)
        .sum::<u64>();
    (scalar_ns, lane_ns, compiled.num_states(), steps, equal)
}

fn comparison_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&64u32, &512u32);
    let trials = cfg.trials(3, 10);
    let seq = SeedSeq::new(cfg.master_seed ^ 0xE46);
    let mut table = Table::new(
        "Engine comparison: generic reference vs compiled dense engines",
        "same protocol/graph/seed ⇒ identical outcomes; 'engine' is what run_trials_auto selects \
         (dense = AOT table, lazy = on-demand cache — the identifier protocol's only compiled \
         path). Lazy speedups track the cache-hit fraction: long runs amortize first-sight \
         misses, short generation-dominated ones (identifier on clique/torus at these sizes) \
         stay below 1× — see BENCH.md. Count rows race the graph-free count engine (exact in \
         distribution, not trace-identical): 'outcomes equal' there means both sides elected a \
         unique leader, and speedup is wall-time to stability. Lanes rows race scalar dense vs \
         the lane-parallel dense engine (per-trial trace-identical; speedup is aggregate \
         trials-to-completion wall time)",
        &[
            "workload",
            "engine",
            "n",
            "|Λ| seen",
            "steps",
            "generic Msteps/s",
            "compiled Msteps/s",
            "speedup",
            "outcomes equal",
        ],
    );
    let token = TokenProtocol::all_candidates();
    let majority = MajorityProtocol::new(n / 3, n);
    let identifier = IdentifierProtocol::new(identifier_bits(n, false));
    for (label, g, seed) in [
        (
            format!("token/clique({n})"),
            families::clique(n),
            seq.child(0),
        ),
        (
            format!("token/cycle({n})"),
            families::cycle(n),
            seq.child(1),
        ),
        (format!("token/star({n})"), families::star(n), seq.child(2)),
    ] {
        push_race_row(&mut table, &label, &g, &token, seed, trials);
    }
    let g = families::cycle(n);
    push_race_row(
        &mut table,
        &format!("majority/cycle({n})"),
        &g,
        &majority,
        seq.child(3),
        trials,
    );
    // The lazy tier: identifier at realistic k — the protocol family
    // the AOT cap excludes, now on the compiled path.
    let side = (f64::from(n).sqrt().round()) as u32;
    for (label, g, seed) in [
        (
            format!("identifier/clique({n})"),
            families::clique(n),
            seq.child(4),
        ),
        (
            format!("identifier/star({n})"),
            families::star(n),
            seq.child(5),
        ),
        (
            format!("identifier/torus({side}x{side})"),
            families::torus(side, side),
            seq.child(6),
        ),
    ] {
        push_race_row(&mut table, &label, &g, &identifier, seed, trials);
    }
    // The count tier: the workloads the sweep's clique column serves
    // graph-free. These sizes sit below the auto-selection threshold
    // (`COUNT_MIN_AGENTS`) precisely so the generic side can afford to
    // materialize the clique — the race is equivalence evidence, the
    // 10⁷–10⁹ scaling lives in `bench_engine` and the sweep.
    push_count_row(
        &mut table,
        &format!("token/clique({n})"),
        n,
        &token,
        seq.child(7),
        trials,
    );
    // Fast on the clique with the analytic coupon-collector broadcast
    // estimate `n·ln n` — the same parameterization the sweep's count
    // cells use (the measured `broadcast_guess` would overestimate a
    // clique's broadcast time by ~n/ln n).
    let nf = f64::from(n);
    let fast = FastProtocol::new(FastParams::practical(
        nf * nf.ln(),
        n - 1,
        (u64::from(n) * u64::from(n - 1) / 2) as usize,
        n,
    ));
    push_count_row(
        &mut table,
        &format!("fast/clique({n})"),
        n,
        &fast,
        seq.child(8),
        trials,
    );
    // The lane tier: same AOT table, 8+ trials stepped in lockstep.
    // These rows race scalar-dense against lane-dense (not against the
    // generic engine), so the speedup column reads as "what the
    // `--lanes` sweep flag buys over the engine the sweep would
    // otherwise use".
    let lane_trials = trials.max(LANE_MIN_TRIALS);
    for (label, g, seed) in [
        (
            format!("token/clique({n})"),
            families::clique(n),
            seq.child(9),
        ),
        (
            format!("token/cycle({n})"),
            families::cycle(n),
            seq.child(10),
        ),
    ] {
        push_lanes_row(&mut table, &label, &g, &token, seed, lane_trials);
    }
    table
}

fn push_race_row<P: Protocol + Clone>(
    table: &mut Table,
    label: &str,
    g: &Graph,
    p: &P,
    seed: u64,
    trials: usize,
) {
    let engine = select_engine(p, g.num_nodes());
    assert_ne!(
        engine,
        Engine::Generic,
        "engine experiment workloads must have a dense-tier engine"
    );
    let (generic_ns, dense_ns, states, steps, equal) = race(g, p, engine, seed, trials);
    let msteps = |ns: f64| steps as f64 / ns * 1e3;
    table.push_row(vec![
        label.to_string(),
        engine.label().to_string(),
        g.num_nodes().to_string(),
        states.to_string(),
        steps.to_string(),
        fmt_num(msteps(generic_ns)),
        fmt_num(msteps(dense_ns)),
        fmt_num(generic_ns / dense_ns),
        equal.to_string(),
    ]);
}

fn push_lanes_row<P: Protocol + Clone>(
    table: &mut Table,
    label: &str,
    g: &Graph,
    p: &P,
    seed: u64,
    trials: usize,
) {
    let (scalar_ns, lane_ns, states, steps, equal) = race_lanes(g, p, seed, trials);
    let msteps = |ns: f64| steps as f64 / ns * 1e3;
    table.push_row(vec![
        label.to_string(),
        Engine::Lanes.label().to_string(),
        g.num_nodes().to_string(),
        states.to_string(),
        steps.to_string(),
        // For lane rows the "generic" column holds the *scalar dense*
        // throughput — the engine the lane tier displaces.
        fmt_num(msteps(scalar_ns)),
        fmt_num(msteps(lane_ns)),
        fmt_num(scalar_ns / lane_ns),
        equal.to_string(),
    ]);
}

fn push_count_row<P: Protocol + Clone>(
    table: &mut Table,
    label: &str,
    n: u32,
    p: &P,
    seed: u64,
    trials: usize,
) {
    let (generic_ns, count_ns, states, generic_steps, count_steps, equal) =
        race_count(n, p, seed, trials);
    table.push_row(vec![
        label.to_string(),
        Engine::Count.label().to_string(),
        n.to_string(),
        states.to_string(),
        count_steps.to_string(),
        fmt_num(generic_steps as f64 / generic_ns * 1e3),
        fmt_num(count_steps as f64 / count_ns * 1e3),
        // Trajectories differ, so the honest speedup is wall-time to
        // stability, not a per-step throughput ratio.
        fmt_num(generic_ns / count_ns),
        equal.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_identifier_rows_use_the_lazy_engine() {
        // One table build covers all the assertions (the races are the
        // most expensive lab test; don't run them twice).
        let cfg = RunConfig::default();
        let t = comparison_table(&cfg);
        assert!(t.num_rows() >= 11);
        let mut lazy_rows = 0;
        let mut count_rows = 0;
        let mut lane_rows = 0;
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 8), "true", "row {row}: outcomes diverged");
            if t.cell(row, 1) == "count" {
                count_rows += 1;
            } else if t.cell(row, 1) == "lanes" {
                lane_rows += 1;
            } else if t.cell(row, 0).starts_with("identifier/") {
                assert_eq!(t.cell(row, 1), "lazy", "row {row}");
                lazy_rows += 1;
            } else {
                assert_eq!(t.cell(row, 1), "dense", "row {row}");
            }
        }
        assert_eq!(lazy_rows, 3);
        assert_eq!(count_rows, 2);
        assert_eq!(lane_rows, 2);
    }

    #[test]
    fn race_reports_equal_outcomes() {
        let g = families::clique(16);
        let p = TokenProtocol::all_candidates();
        let (generic_ns, dense_ns, states, steps, equal) = race(&g, &p, Engine::Dense, 3, 2);
        assert!(equal);
        assert!(states >= 2);
        assert!(steps > 0);
        assert!(generic_ns > 0.0 && dense_ns > 0.0);
        let (generic_ns, lazy_ns, states, _, equal) = race(&g, &p, Engine::LazyDense, 3, 2);
        assert!(equal);
        assert!(states >= 2);
        assert!(generic_ns > 0.0 && lazy_ns > 0.0);
    }
}
