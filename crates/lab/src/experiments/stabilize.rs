//! Loose-stabilization experiment: the elect-vs-hold tradeoff, and
//! bounded re-election under corrupt bursts.
//!
//! The loosely-stabilizing family (`popele_core::loose`) is judged by
//! two quantities measured from **arbitrary** start configurations
//! (Sudo et al. 2012; Kanaya et al. 2024): the expected **election
//! time** to reach a unique-leader configuration and the expected
//! **holding time** until that configuration is first violated. Both
//! are controlled by one knob — the heartbeat budget `τ` (or, for the
//! ring variant, the distance bound `B`) — pulling in opposite
//! directions: draining a bigger budget slows elections linearly-ish,
//! while surviving it pushes violations out superlinearly. The first
//! table sweeps the knob and shows exactly that tradeoff (holds that
//! outlive the step budget are *censored* — reported as a count, not
//! smuggled into the mean).
//!
//! The second table injects corrupt bursts (crash-and-rejoin resets of
//! a third of the nodes) into held configurations: the class's
//! headline property is that re-election after *any* perturbation is
//! bounded — compare the reelect columns against the fate of the token
//! protocol under the same bursts in `popele-lab faults`, which can
//! lose its leader forever.

use crate::report::{fmt_num, Table};
use crate::workloads::Family;
use crate::RunConfig;
use popele_core::{LooseProtocol, RingLooseProtocol};
use popele_engine::monte_carlo::{TrialOptions, TrialResult};
use popele_engine::stabilize::run_trials_stabilize_auto;
use popele_engine::{FaultKind, FaultPlan};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n: u32 = *cfg.pick(&32, &128);
    let trials = cfg.trials(6, 16);
    let max_steps: u64 = *cfg.pick(&(1 << 21), &(1 << 26));
    let seq = SeedSeq::new(cfg.master_seed);
    let options = TrialOptions {
        trials,
        max_steps,
        threads: cfg.threads,
        ..TrialOptions::default()
    };

    let mut tradeoff = Table::new(
        "loose stabilization tradeoff",
        format!(
            "elect-and-hold from arbitrary configurations, n={n}, {trials} trials/row, budget \
             {max_steps} steps; elect = steps to the first unique-leader configuration, hold = \
             steps it survived (censored = still held at the budget)"
        ),
        &[
            "protocol",
            "family",
            "budget",
            "elected",
            "timeouts",
            "elect_mean",
            "hold_mean",
            "hold_q90",
            "censored",
            "engine",
        ],
    );

    let budgets: &[u32] = cfg.pick(&[4, 8, 16, 32, 64][..], &[8, 16, 32, 64, 128, 256][..]);
    let mut row_seed = 0u64;
    let next_seed = |row_seed: &mut u64| {
        *row_seed += 1;
        seq.child(*row_seed)
    };
    // One fixed graph seed per family, shared by every section below,
    // so both tables (and the ring rows) measure the same graph
    // instance per family regardless of how many rows precede it.
    let graph_seed = |f_idx: u64| seq.child(900 + f_idx);
    for (f_idx, &family) in [Family::Clique, Family::Cycle].iter().enumerate() {
        let graph = family.generate(n, graph_seed(f_idx as u64));
        for &tau in budgets {
            let results = run_trials_stabilize_auto(
                &graph,
                &LooseProtocol::new(tau),
                next_seed(&mut row_seed),
                options,
                &FaultPlan::empty(),
            );
            tradeoff.push_row(tradeoff_row("loose", family, tau, &results));
        }
    }
    // The ring variant, on its ring: the bound plays the budget role.
    let ring = Family::Cycle.generate(n, graph_seed(1));
    for factor in [1u32, 2, 4] {
        let p = RingLooseProtocol::new((factor * ring.num_nodes()).max(8));
        let results = run_trials_stabilize_auto(
            &ring,
            &p,
            next_seed(&mut row_seed),
            options,
            &FaultPlan::empty(),
        );
        tradeoff.push_row(tradeoff_row(
            "ring-loose",
            Family::Cycle,
            p.bound(),
            &results,
        ));
    }

    let mut reelect = Table::new(
        "loose reelection under corrupt bursts",
        format!(
            "three crash-and-rejoin bursts (n/3 nodes each) against held configurations, n={n}, \
             {trials} trials/row; reelect = steps from the last burst back to a unique leader"
        ),
        &[
            "protocol",
            "family",
            "budget",
            "recovered",
            "lost",
            "peak",
            "reelect_mean",
            "reelect_q90",
        ],
    );
    let burst_gap = u64::from(n) * 64;
    let plan = FaultPlan::periodic(
        FaultKind::CorruptNodes { count: n / 3 },
        4 * burst_gap,
        burst_gap,
        3,
    );
    for (f_idx, &family) in [Family::Clique, Family::Cycle].iter().enumerate() {
        let graph = family.generate(n, graph_seed(f_idx as u64));
        for &tau in cfg.pick(&[8u32, 32][..], &[16u32, 64][..]) {
            let results = run_trials_stabilize_auto(
                &graph,
                &LooseProtocol::new(tau),
                next_seed(&mut row_seed),
                options,
                &plan,
            );
            reelect.push_row(reelect_row("loose", family, tau, &results));
        }
    }

    vec![tradeoff, reelect]
}

/// Aggregates one row of the elect-vs-hold table.
fn tradeoff_row(
    protocol: &str,
    family: Family,
    budget: u32,
    results: &[TrialResult],
) -> Vec<String> {
    let elect: Summary = results
        .iter()
        .filter_map(|r| r.stabilization_step)
        .map(|s| s as f64)
        .collect();
    let timeouts = results.len() - elect.len();
    let holdings = || results.iter().filter_map(|r| r.holding);
    let hold: Summary = holdings()
        .filter_map(|h| h.hold_steps)
        .map(|s| s as f64)
        .collect();
    let censored = holdings().filter(|h| h.held_to_budget).count();
    let stat = |s: &Summary, v: f64| {
        if s.is_empty() {
            "-".to_string()
        } else {
            fmt_num(v)
        }
    };
    vec![
        protocol.to_string(),
        family.label().to_string(),
        budget.to_string(),
        elect.len().to_string(),
        timeouts.to_string(),
        stat(&elect, elect.mean()),
        stat(&hold, hold.mean()),
        stat(
            &hold,
            if hold.is_empty() {
                0.0
            } else {
                hold.quantile(0.9)
            },
        ),
        censored.to_string(),
        results
            .first()
            .map_or("-".to_string(), |r| r.engine.label().to_string()),
    ]
}

/// Aggregates one row of the re-election table.
fn reelect_row(
    protocol: &str,
    family: Family,
    budget: u32,
    results: &[TrialResult],
) -> Vec<String> {
    let recoveries = || results.iter().filter_map(|r| r.recovery);
    let reelect: Summary = recoveries()
        .filter_map(|r| r.reconvergence_steps)
        .map(|s| s as f64)
        .collect();
    let lost = recoveries().filter(|r| r.leader_lost).count();
    let peak = recoveries().map(|r| r.peak_leaders).max().unwrap_or(0);
    let stat = |v: f64| {
        if reelect.is_empty() {
            "-".to_string()
        } else {
            fmt_num(v)
        }
    };
    vec![
        protocol.to_string(),
        family.label().to_string(),
        budget.to_string(),
        reelect.len().to_string(),
        lost.to_string(),
        peak.to_string(),
        stat(reelect.mean()),
        stat(if reelect.is_empty() {
            0.0
        } else {
            reelect.quantile(0.9)
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_tables() {
        let cfg = RunConfig {
            quick: true,
            master_seed: 7,
            threads: 1,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        // 2 families × 5 budgets + 3 ring rows.
        assert_eq!(tables[0].num_rows(), 13);
        // 2 families × 2 budgets.
        assert_eq!(tables[1].num_rows(), 4);
        // The tradeoff must be visible on the clique block (rows 0–4):
        // every budget elects, the smallest is violated within the
        // budget, the largest holds to the budget in every trial.
        for r in 0..5 {
            assert_ne!(tables[0].cell(r, 3), "0", "clique row {r} never elected");
        }
        assert_ne!(tables[0].cell(0, 6), "-", "τ=4 hold never violated?");
        assert_eq!(tables[0].cell(4, 8), "6", "τ=64 hold not censored?");
        // On the cycle, budgets below the propagation lag may never
        // elect (that non-election IS the finding); the largest budget
        // must.
        assert_ne!(tables[0].cell(9, 3), "0", "cycle τ=64 never elected");
    }
}
