//! States-vs-time Pareto frontier: every protocol family head to head.
//!
//! ROADMAP item 4 asks for the corners of the states-versus-time
//! tradeoff as competitors, not just citations: the paper's own
//! protocols (token, identifier, fast), the trivial star specialist,
//! the exact-majority extension, the loosely-stabilizing timeout
//! family, the space-optimal Gąsieniec–Stachowiak junta race and the
//! time-optimal self-stabilizing ring circulation. This experiment
//! lines them all up in one table: declared state-space size `|Λ|`
//! against measured election time (and holding time, for the
//! arbitrary-start families), with the engine tier each row's `|Λ|`
//! lands on — the AOT/lazy/generic waterfall made visible as data.
//!
//! Every protocol runs on its *home* family (the one its analysis is
//! derived for: star → star, ring variants → cycle, the rest →
//! clique), at the same node count, so the time column is comparable
//! across rows while each oracle stays exact. Clean-start protocols
//! report the time to the first stable unique-leader configuration;
//! the stabilizing families start from arbitrary configurations and
//! additionally report the mean holding time (censored holds — still
//! alive at the step budget — are counted, not smuggled into means).

use crate::report::{fmt_num, Table};
use crate::workloads::{broadcast_guess, Family};
use crate::RunConfig;
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{
    FastProtocol, IdentifierProtocol, LooseProtocol, MajorityProtocol, RingLooseProtocol,
    SpaceOptimalProtocol, StarProtocol, TimeOptimalRingProtocol, TokenProtocol,
};
use popele_engine::monte_carlo::{run_trials_auto, TrialOptions, TrialResult};
use popele_engine::stabilize::{run_trials_stabilize_auto, ArbitraryInit};
use popele_engine::{FaultPlan, Protocol};
use popele_graph::Graph;
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n: u32 = *cfg.pick(&64, &256);
    let trials = cfg.trials(8, 32);
    let max_steps: u64 = *cfg.pick(&(1 << 24), &(1 << 30));
    let seq = SeedSeq::new(cfg.master_seed);
    let options = TrialOptions {
        trials,
        max_steps,
        threads: cfg.threads,
        ..TrialOptions::default()
    };

    let mut table = Table::new(
        "states-vs-time pareto",
        format!(
            "every protocol on its home family at n={n}, {trials} trials/row, budget \
             {max_steps} steps; states = declared |Λ| bound, elect = steps to a stable \
             unique leader (arbitrary-start rows: to the first unique-leader \
             configuration, with the mean hold until violation), engine = tier selected \
             for that |Λ|"
        ),
        &[
            "protocol",
            "family",
            "start",
            "states",
            "elected",
            "elect_mean",
            "elect_q90",
            "hold_mean",
            "engine",
        ],
    );

    let clique = Family::Clique.generate(n, seq.child(900));
    let cycle = Family::Cycle.generate(n, seq.child(901));
    let star = Family::Star.generate(n, seq.child(902));
    let mut row_seed = 0u64;
    let mut next_seed = || {
        row_seed += 1;
        seq.child(row_seed)
    };

    table.push_row(clean_row(
        "token",
        Family::Clique,
        &clique,
        &TokenProtocol::all_candidates(),
        next_seed(),
        options,
    ));
    table.push_row(clean_row(
        "identifier",
        Family::Clique,
        &clique,
        &IdentifierProtocol::new(identifier_bits(n, false)),
        next_seed(),
        options,
    ));
    let fast_params = FastParams::practical(
        broadcast_guess(&clique),
        clique.max_degree(),
        clique.num_edges(),
        n,
    );
    table.push_row(clean_row(
        "fast",
        Family::Clique,
        &clique,
        &FastProtocol::new(fast_params),
        next_seed(),
        options,
    ));
    table.push_row(clean_row(
        "star",
        Family::Star,
        &star,
        &StarProtocol::new(),
        next_seed(),
        options,
    ));
    table.push_row(clean_row(
        "majority",
        Family::Clique,
        &clique,
        &MajorityProtocol::new(crate::workloads::majority_split(n), n),
        next_seed(),
        options,
    ));
    table.push_row(clean_row(
        "space-opt",
        Family::Clique,
        &clique,
        &SpaceOptimalProtocol::practical(n),
        next_seed(),
        options,
    ));
    table.push_row(stab_row(
        "loose",
        Family::Clique,
        &clique,
        &LooseProtocol::practical(n),
        next_seed(),
        options,
    ));
    table.push_row(stab_row(
        "ring-loose",
        Family::Cycle,
        &cycle,
        &RingLooseProtocol::for_ring(n),
        next_seed(),
        options,
    ));
    table.push_row(stab_row(
        "ring-time-opt",
        Family::Cycle,
        &cycle,
        &TimeOptimalRingProtocol::for_ring(n),
        next_seed(),
        options,
    ));

    vec![table]
}

/// A clean-start row: time to a *stable* unique-leader configuration.
fn clean_row<P: Protocol + Clone>(
    label: &str,
    family: Family,
    graph: &Graph,
    protocol: &P,
    seed: u64,
    options: TrialOptions,
) -> Vec<String> {
    let results = run_trials_auto(graph, protocol, seed, options);
    pareto_row(
        label,
        family,
        "clean",
        protocol.state_space_bound(),
        &results,
    )
}

/// An arbitrary-start row: election + holding metrics attached.
fn stab_row<P: ArbitraryInit + Clone>(
    label: &str,
    family: Family,
    graph: &Graph,
    protocol: &P,
    seed: u64,
    options: TrialOptions,
) -> Vec<String> {
    let results = run_trials_stabilize_auto(graph, protocol, seed, options, &FaultPlan::empty());
    pareto_row(
        label,
        family,
        "arbitrary",
        protocol.state_space_bound(),
        &results,
    )
}

/// Aggregates one Pareto row from a trial batch.
fn pareto_row(
    label: &str,
    family: Family,
    start: &str,
    states: Option<u64>,
    results: &[TrialResult],
) -> Vec<String> {
    let elect: Summary = results
        .iter()
        .filter_map(|r| r.stabilization_step)
        .map(|s| s as f64)
        .collect();
    let hold: Summary = results
        .iter()
        .filter_map(|r| r.holding)
        .filter_map(|h| h.hold_steps)
        .map(|s| s as f64)
        .collect();
    let stat = |s: &Summary, v: f64| {
        if s.is_empty() {
            "-".to_string()
        } else {
            fmt_num(v)
        }
    };
    vec![
        label.to_string(),
        family.label().to_string(),
        start.to_string(),
        states.map_or("-".to_string(), |b| b.to_string()),
        elect.len().to_string(),
        stat(&elect, elect.mean()),
        stat(
            &elect,
            if elect.is_empty() {
                0.0
            } else {
                elect.quantile(0.9)
            },
        ),
        stat(&hold, hold.mean()),
        results
            .first()
            .map_or("-".to_string(), |r| r.engine.label().to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_the_full_registry() {
        let cfg = RunConfig {
            quick: true,
            master_seed: 7,
            threads: 1,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // The acceptance floor: at least 8 protocol rows.
        assert!(t.num_rows() >= 8, "only {} rows", t.num_rows());
        for r in 0..t.num_rows() {
            // Every row declares a finite state bound and elects in at
            // least one trial at the quick budget.
            assert_ne!(t.cell(r, 3), "-", "row {r} has no |Λ| bound");
            assert_ne!(t.cell(r, 4), "0", "row {r} never elected");
            assert_ne!(t.cell(r, 8), "-", "row {r} has no engine");
        }
        // The two corner protocols are present with their home families.
        let labels: Vec<_> = (0..t.num_rows())
            .map(|r| t.cell(r, 0).to_string())
            .collect();
        assert!(labels.iter().any(|l| l == "space-opt"));
        assert!(labels.iter().any(|l| l == "ring-time-opt"));
    }
}
