//! Random-walk hitting and meeting times (Section 4.1, Lemma 17–19,
//! Proposition 20).
//!
//! 1. **Lemma 17** — exact worst-case hitting times of the classic and
//!    population walks on several families; `H_P(G) ≤ 27·n·H(G)` must
//!    hold (it does with large slack — the population walk is the classic
//!    walk slowed by ≈ `m/deg`).
//! 2. **Lemma 18** — simulated meeting times vs the `2·H_P(G)` bound.
//! 3. **Proposition 20** — on dense `G(n, 1/2)`, `H(G) ∈ O(n)`: the
//!    ratio `H/n` stays bounded as `n` grows.

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_dynamics::walks::{
    classic_worst_hitting, population_worst_hitting, simulate_meeting_time,
};
use popele_graph::{families, random, Graph};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the random-walk experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![
        hitting_table(cfg),
        meeting_table(cfg),
        gnp_hitting_table(cfg),
        cover_table(cfg),
    ]
}

fn cover_table(cfg: &RunConfig) -> Table {
    use popele_dynamics::walks::simulate_classic_cover;
    let n = *cfg.pick(&24u32, &64u32);
    let trials = cfg.trials(40, 200);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x40);
    let mut table = Table::new(
        "Cover times of the classic random walk",
        "Section 1.3 refinement uses the cover time C(G); Matthews: H(G) ≤ C(G) ≤ H(G)·H_n",
        &["family", "n", "H(G)", "C measured", "C/H", "Matthews H·H_n"],
    );
    let harmonic: f64 = (1..=u64::from(n)).map(|i| 1.0 / i as f64).sum();
    let cases: Vec<(&str, Graph)> = vec![
        ("clique", families::clique(n)),
        ("cycle", families::cycle(n)),
        ("star", families::star(n)),
        ("lollipop", families::lollipop(n / 2, n / 2)),
    ];
    for (i, (label, g)) in cases.into_iter().enumerate() {
        let h = classic_worst_hitting(&g);
        let child = SeedSeq::new(seq.child(i as u64));
        let cover: Summary = (0..trials)
            .map(|t| simulate_classic_cover(&g, 0, child.child(t as u64)) as f64)
            .collect();
        table.push_row(vec![
            label.to_string(),
            g.num_nodes().to_string(),
            fmt_num(h),
            fmt_num(cover.mean()),
            fmt_num(cover.mean() / h),
            fmt_num(h * harmonic),
        ]);
    }
    table
}

fn hitting_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&24u32, &64u32);
    let mut table = Table::new(
        "Worst-case hitting times: classic vs population model",
        "Lemma 17: H_P(G) ≤ 27·n·H(G); population walks are classic walks slowed by ≈ m/deg",
        &["family", "n", "H(G)", "H_P(G)", "H_P/(n·H)", "Lemma 17 ok"],
    );
    let cases: Vec<(&str, Graph)> = vec![
        ("clique", families::clique(n)),
        ("cycle", families::cycle(n)),
        ("star", families::star(n)),
        ("path", families::path(n)),
        ("lollipop", families::lollipop(n / 2, n / 2)),
    ];
    for (label, g) in cases {
        let h = classic_worst_hitting(&g);
        let hp = population_worst_hitting(&g);
        let ratio = hp / (f64::from(g.num_nodes()) * h);
        table.push_row(vec![
            label.to_string(),
            g.num_nodes().to_string(),
            fmt_num(h),
            fmt_num(hp),
            fmt_num(ratio),
            (ratio <= 27.0).to_string(),
        ]);
    }
    table
}

fn meeting_table(cfg: &RunConfig) -> Table {
    let n = *cfg.pick(&16u32, &32u32);
    let trials = cfg.trials(60, 400);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x3E);
    let mut table = Table::new(
        "Meeting times vs hitting-time bound",
        "Lemma 18: M(u,v) ≤ 2·H_P(G) for any pair of population-model walks",
        &["family", "pair", "mean M", "2·H_P", "M/(2·H_P)"],
    );
    let cases: Vec<(&str, Graph, (u32, u32))> = vec![
        ("clique", families::clique(n), (0, 1)),
        ("cycle", families::cycle(n), (0, n / 2)),
        ("star", families::star(n), (1, 2)),
    ];
    for (i, (label, g, (a, b))) in cases.into_iter().enumerate() {
        let child = SeedSeq::new(seq.child(i as u64));
        let meetings: Summary = (0..trials)
            .map(|t| simulate_meeting_time(&g, a, b, child.child(t as u64)) as f64)
            .collect();
        let bound = 2.0 * population_worst_hitting(&g);
        table.push_row(vec![
            label.to_string(),
            format!("({a},{b})"),
            fmt_num(meetings.mean()),
            fmt_num(bound),
            fmt_num(meetings.mean() / bound),
        ]);
    }
    table
}

fn gnp_hitting_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[16u32, 32, 64][..], &[32u32, 64, 128, 256][..]);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x3F);
    let mut table = Table::new(
        "Hitting times on dense random graphs",
        "Proposition 20: H(G) ∈ O(n) w.h.p. for G(n, p) with constant p — H/n stays bounded",
        &["n", "H(G)", "H/n"],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let g = random::erdos_renyi_connected(n, 0.5, seq.child(i as u64), 100);
        let h = classic_worst_hitting(&g);
        table.push_row(vec![n.to_string(), fmt_num(h), fmt_num(h / f64::from(n))]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma17_holds_everywhere() {
        let cfg = RunConfig::default();
        let t = hitting_table(&cfg);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 5), "true", "Lemma 17 violated in row {row}");
        }
    }

    #[test]
    fn meeting_bound_holds() {
        let cfg = RunConfig::default();
        let t = meeting_table(&cfg);
        for row in 0..t.num_rows() {
            let ratio: f64 = t.cell(row, 4).parse().unwrap();
            // Mean must respect the expectation bound (generous MC slack).
            assert!(ratio <= 1.2, "row {row}: M exceeded 2·H_P ({ratio})");
        }
    }

    #[test]
    fn cover_times_within_matthews_band() {
        let cfg = RunConfig::default();
        let t = cover_table(&cfg);
        for row in 0..t.num_rows() {
            let h: f64 = t.cell(row, 2).parse().unwrap();
            let c: f64 = t.cell(row, 3).parse().unwrap();
            let matthews: f64 = t.cell(row, 5).parse().unwrap();
            // Mean cover time lies between the worst hitting time (up to
            // start-vertex effects) and the Matthews upper bound.
            assert!(c >= 0.5 * h, "row {row}: C {c} vs H {h}");
            assert!(
                c <= matthews * 1.1,
                "row {row}: C {c} vs Matthews {matthews}"
            );
        }
    }

    #[test]
    fn gnp_hitting_linear() {
        let cfg = RunConfig::default();
        let t = gnp_hitting_table(&cfg);
        let mut ratios = Vec::new();
        for row in 0..t.num_rows() {
            ratios.push(t.cell(row, 2).parse::<f64>().unwrap());
        }
        // H/n bounded: within a small constant band (Prop 20's constant
        // for p = 1/2 is ≈ 2).
        for r in &ratios {
            assert!(*r < 6.0, "H/n = {r} too large for dense G(n,p)");
        }
    }
}
