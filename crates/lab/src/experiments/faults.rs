//! Fault-injection experiment: recovery behaviour of the paper's
//! protocols under perturbations the theorems do not cover.
//!
//! For each (protocol, family, fault profile) triple, runs
//! fault-injected Monte-Carlo trials (see [`popele_engine::faults`])
//! and reports how hard the system was knocked over (peak leader
//! count), whether the unique leader was ever permanently lost, and how
//! many steps reconvergence took after the last fault — the metrics by
//! which loosely-/self-stabilizing leader election is judged (Kanaya et
//! al. 2024; Yokota et al. 2020).
//!
//! The token protocol is the interesting subject: its correctness
//! invariant (candidates = black tokens + white tokens) is *not*
//! restored by arbitrary corruption. Corrupting a token-less candidate
//! mints a surplus black token, and the whites that surplus eventually
//! spawns can demote *every* candidate — the "lost" column — while
//! corrupting followers merely re-promotes candidates the protocol
//! hunts back down. Node churn can likewise carry tokens away. This is
//! precisely the gap between the paper's guarantees and
//! (loosely-)self-stabilizing election, made measurable.

use crate::report::{fmt_num, Table};
use crate::sweep::FaultSpec;
use crate::workloads::Family;
use crate::RunConfig;
use popele_core::{MajorityProtocol, TokenProtocol};
use popele_engine::monte_carlo::{run_trials_auto_with_faults, TrialOptions, TrialResult};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let n: u32 = *cfg.pick(&48, &512);
    let trials = cfg.trials(6, 24);
    let max_steps: u64 = *cfg.pick(&(1 << 24), &(1 << 30));
    let seq = SeedSeq::new(cfg.master_seed);

    let mut table = Table::new(
        "fault recovery",
        format!(
            "fault-injected elections, n={n}, {trials} trials/row; reconv = steps from the \
             last fault to renewed stability; lost = trials ending with zero leader outputs; \
             peak = worst leader-count excursion (baseline row: same budget, no faults)"
        ),
        &[
            "protocol",
            "family",
            "fault",
            "ok",
            "timeouts",
            "lost",
            "peak",
            "reconv_mean",
            "reconv_q90",
        ],
    );

    let families = [Family::Clique, Family::Cycle, Family::RandomRegular4];
    for (f_idx, family) in families.iter().enumerate() {
        let graph = family.generate(n, seq.child(1000 + f_idx as u64));
        for (p_idx, protocol) in ["token", "majority"].iter().enumerate() {
            for (s_idx, fault) in FaultSpec::ALL.iter().enumerate() {
                let seed = seq.child((f_idx * 100 + p_idx * 10 + s_idx) as u64);
                let options = TrialOptions {
                    trials,
                    max_steps,
                    threads: cfg.threads,
                    ..TrialOptions::default()
                };
                let plan = fault.plan(graph.num_nodes());
                let results = match *protocol {
                    "token" => run_trials_auto_with_faults(
                        &graph,
                        &TokenProtocol::all_candidates(),
                        seed,
                        options,
                        &plan,
                    ),
                    _ => {
                        let nn = graph.num_nodes();
                        run_trials_auto_with_faults(
                            &graph,
                            &MajorityProtocol::new(crate::workloads::majority_split(nn), nn),
                            seed,
                            options,
                            &plan,
                        )
                    }
                };
                table.push_row(digest_row(
                    protocol,
                    family.label(),
                    fault.label(),
                    &results,
                ));
            }
        }
    }
    vec![table]
}

/// Aggregates one row of the recovery table.
fn digest_row(protocol: &str, family: &str, fault: &str, results: &[TrialResult]) -> Vec<String> {
    let ok = results
        .iter()
        .filter(|r| r.stabilization_step.is_some())
        .count();
    let timeouts = results.len() - ok;
    let recoveries = || results.iter().filter_map(|r| r.recovery);
    let lost = recoveries().filter(|r| r.leader_lost).count();
    let peak = recoveries().map(|r| r.peak_leaders).max().unwrap_or(0);
    let reconv: Summary = recoveries()
        .filter_map(|r| r.reconvergence_steps)
        .map(|s| s as f64)
        .collect();
    let stat = |v: f64| {
        if reconv.is_empty() {
            "-".to_string()
        } else {
            fmt_num(v)
        }
    };
    vec![
        protocol.to_string(),
        family.to_string(),
        fault.to_string(),
        ok.to_string(),
        timeouts.to_string(),
        lost.to_string(),
        peak.to_string(),
        stat(reconv.mean()),
        stat(if reconv.is_empty() {
            0.0
        } else {
            reconv.quantile(0.9)
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_grid() {
        let cfg = RunConfig {
            quick: true,
            master_seed: 7,
            threads: 1,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        // 3 families × 2 protocols × 4 fault profiles.
        assert_eq!(tables[0].num_rows(), 24);
        // Baseline rows carry no recovery stats ("-"), faulted rows do.
        let some_faulted = (0..tables[0].num_rows())
            .any(|r| tables[0].cell(r, 2) != "none" && tables[0].cell(r, 7) != "-");
        assert!(some_faulted);
    }
}
