//! The Theorem 34 indistinguishability mechanism, observed live
//! (Lemmas 35–36).
//!
//! On a Lemma 38 ring (four isomorphic segments `V₀..V₃` joined by long
//! paths) we run the identifier protocol and inspect the configuration at
//! a **Poisson-distributed** random step `X ~ Poisson(λ)`, mirroring the
//! proof's Poissonization, with `λ` far below the isolation-time scale
//! `Θ(ℓ·m)`. Conditioned on the isolation event `E = {X < Y(C)}` (no
//! segment has yet been influenced from outside its `ℓ`-neighbourhood —
//! tracked on the *same* schedule via
//! [`popele_dynamics::isolation::ContaminationTracker`]):
//!
//! * **Lemma 35(a)**: the segments are exchangeable —
//!   `Pr[Lᵢ | E]` (segment `i` contains a leader output) is the same for
//!   all `i`;
//! * **Lemma 35(b)**: opposite segments are conditionally *independent*:
//!   `Pr[L₀ ∧ L₂ | E] ≈ Pr[L₀|E]·Pr[L₂|E]`;
//! * **Lemma 36's engine**: once local leaders exist, several isolated
//!   segments hold them *simultaneously* with constant probability —
//!   such configurations are not stable, which is exactly why
//!   stabilization needs `Ω(ℓ·m)` steps on this graph.
//!
//! Two snapshot scales are reported: an *early* `λ` at which identifier
//! generation is only partly finished (leader presence per segment is a
//! nondegenerate coin — the independence test is informative) and a
//! *late* `λ` at which every segment has local leaders (the instability
//! regime).

use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_core::IdentifierProtocol;
use popele_dynamics::isolation::ContaminationTracker;
use popele_engine::{Executor, Protocol, Role};
use popele_graph::families;
use popele_graph::renitent::lemma38;
use popele_math::dist::Poisson;
use popele_math::rng::SeedSeq;

/// Runs the indistinguishability demonstration.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    let ell = *cfg.pick(&32u32, &48u32);
    let trials = cfg.trials(400, 2000);
    let base = families::clique(5);
    let (g, cover) = lemma38(&base, 0, ell);
    let k = 6u32;
    let n = f64::from(g.num_nodes());
    // Early: λ = n gives each node ≈ 2 interactions, so only a percent
    // or two of nodes have finished their k = 6 identifier bits —
    // per-segment leader presence is a nondegenerate coin and the
    // independence test is informative.
    let early = n;
    // Late: an order below the isolation scale Θ(ℓ·m) but far past
    // generation — every segment has local leaders.
    let late = f64::from(ell) * g.num_edges() as f64 / 8.0;
    vec![
        snapshot_table(cfg, &g, &cover, k, early, "early", trials),
        snapshot_table(cfg, &g, &cover, k, late, "late", trials),
    ]
}

fn snapshot_table(
    cfg: &RunConfig,
    g: &popele_graph::Graph,
    cover: &popele_graph::renitent::Cover,
    k: u32,
    lambda: f64,
    label: &str,
    trials: usize,
) -> Table {
    let p = IdentifierProtocol::new(k);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x10BB ^ lambda.to_bits());
    let poisson = Poisson::new(lambda);
    let segments = cover.k();

    let mut e_count = 0usize;
    let mut leader_counts = vec![0usize; segments];
    let mut both_02 = 0usize;
    let mut multi_segment = 0usize;
    let mut stable_at_x = 0usize;

    for trial in 0..trials {
        let child = SeedSeq::new(seq.child(trial as u64));
        let mut rng = child.child_rng(0);
        let x = poisson.sample(&mut rng);
        let mut exec = Executor::new(g, &p, child.child(1));
        let mut tracker = ContaminationTracker::new(g, cover);
        for _ in 0..x {
            let (u, v) = exec.step();
            tracker.interact(u, v);
        }
        if tracker.violated() {
            continue; // E failed: some segment saw outside influence.
        }
        e_count += 1;
        if exec.is_stable() {
            stable_at_x += 1;
        }
        let mut with_leader = vec![false; segments];
        for (i, set) in cover.sets().iter().enumerate() {
            with_leader[i] = set
                .iter()
                .any(|&v| p.output(&exec.states()[v as usize]) == Role::Leader);
            if with_leader[i] {
                leader_counts[i] += 1;
            }
        }
        if with_leader[0] && with_leader[2] {
            both_02 += 1;
        }
        if with_leader.iter().filter(|&&x| x).count() >= 2 {
            multi_segment += 1;
        }
    }

    let e_frac = e_count as f64 / trials as f64;
    let pr = |c: usize| c as f64 / e_count.max(1) as f64;
    let mut table = Table::new(
        format!("Theorem 34 indistinguishability ({label} snapshot)"),
        format!(
            "identifier protocol (k={k}) at X ~ Poisson({lambda:.0}) on a 4×K5 Lemma 38 ring with ℓ={}; probabilities conditioned on isolation event E",
            cover.ell()
        ),
        &["quantity", "value", "paper prediction"],
    );
    table.push_row(vec![
        "Pr[E]".into(),
        fmt_num(e_frac),
        "constant (Thm 34 proof: > 1/4)".into(),
    ]);
    for (i, &c) in leader_counts.iter().enumerate() {
        table.push_row(vec![
            format!("Pr[L{i} | E]"),
            fmt_num(pr(c)),
            "equal across segments (Lemma 35a)".into(),
        ]);
    }
    table.push_row(vec![
        "Pr[L0 ∧ L2 | E]".into(),
        fmt_num(pr(both_02)),
        "≈ product below (Lemma 35b)".into(),
    ]);
    table.push_row(vec![
        "Pr[L0|E]·Pr[L2|E]".into(),
        fmt_num(pr(leader_counts[0]) * pr(leader_counts[2])),
        "product reference".into(),
    ]);
    table.push_row(vec![
        "Pr[≥2 segments w/ leader | E]".into(),
        fmt_num(pr(multi_segment)),
        "constant > 0 ⇒ early configs unstable (Lemma 36)".into(),
    ]);
    table.push_row(vec![
        "Pr[stable at X | E]".into(),
        fmt_num(pr(stable_at_x)),
        "bounded below 1 (Lemma 36)".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma35_and_36_shapes() {
        let cfg = RunConfig::default();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        let value = |t: &Table, row: usize| -> f64 { t.cell(row, 1).parse().unwrap() };
        let (early, late) = (&tables[0], &tables[1]);

        // Both snapshots: isolation event has constant probability.
        assert!(value(early, 0) > 0.5, "early Pr[E] = {}", value(early, 0));
        assert!(value(late, 0) > 0.25, "late Pr[E] = {}", value(late, 0));

        // Lemma 35a at the early snapshot: the four conditional leader
        // probabilities agree within Monte-Carlo noise.
        let probs: Vec<f64> = (1..=4).map(|r| value(early, r)).collect();
        let min = probs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = probs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max - min < 0.25,
            "segment leader probabilities differ too much: {probs:?}"
        );

        // Lemma 35b at the early snapshot: joint ≈ product.
        let joint = value(early, 5);
        let product = value(early, 6);
        assert!(
            (joint - product).abs() < 0.15,
            "joint {joint} vs product {product}"
        );

        // Lemma 36 at the late snapshot: several isolated segments hold
        // leaders simultaneously, so configurations at X are not stable.
        assert!(value(late, 7) > 0.5, "Pr[≥2 segments] = {}", value(late, 7));
        assert!(value(late, 8) < 0.5, "Pr[stable at X] = {}", value(late, 8));
    }
}
