//! Renitent-graph lower bounds (Section 6: Lemmas 37–38, Theorems 34
//! and 39).
//!
//! 1. **Lemma 37** — cycles are `Ω(n²)`-renitent: isolation times of the
//!    four-arc cover grow quadratically and `Pr[Y(C) ≥ c·n²] ≥ 1/2`.
//! 2. **Lemma 38** — the four-copy ring construction is
//!    `Ω(ℓ·m)`-renitent: isolation time scales linearly with `ℓ·m`.
//! 3. **Theorem 39** — for targets `T(n)` between `n log n` and `n³`, the
//!    constructed family has broadcast time **and** leader-election time
//!    `Θ(T(n))`: measured `B(G)`, isolation time, and identifier-protocol
//!    stabilization all track the target within constant factors.

use crate::experiments::protocol_stats;
use crate::report::{fmt_num, Table};
use crate::RunConfig;
use popele_core::params::identifier_bits;
use popele_core::IdentifierProtocol;
use popele_dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele_dynamics::isolation::estimate_isolation;
use popele_graph::families;
use popele_graph::renitent::{cycle_cover, lemma38, theorem39_graph};
use popele_math::fit::power_fit;
use popele_math::rng::SeedSeq;

/// Runs the renitence experiments.
#[must_use]
pub fn run(cfg: &RunConfig) -> Vec<Table> {
    vec![
        cycle_table(cfg),
        torus_table(cfg),
        lemma38_table(cfg),
        theorem39_table(cfg),
    ]
}

fn torus_table(cfg: &RunConfig) -> Table {
    let sides: &[u32] = cfg.pick(&[16u32, 24, 32][..], &[16u32, 24, 32, 48][..]);
    let trials = cfg.trials(8, 30);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x6D);
    let mut table = Table::new(
        "Torus slab cover isolation times",
        "Section 6.2: k-dimensional toroidal grids are Ω(n^{1+1/k})-renitent; for k = 2 isolation grows like n^1.5",
        &["side", "n", "mean Y", "Y/n^1.5"],
    );
    let mut points = Vec::new();
    for (i, &side) in sides.iter().enumerate() {
        let (g, cover) = popele_graph::renitent::torus_cover(side);
        let est = estimate_isolation(&g, &cover, trials, u64::MAX, seq.child(i as u64));
        let n = f64::from(g.num_nodes());
        points.push((n, est.times.mean()));
        table.push_row(vec![
            side.to_string(),
            g.num_nodes().to_string(),
            fmt_num(est.times.mean()),
            fmt_num(est.times.mean() / n.powf(1.5)),
        ]);
    }
    let fit = power_fit(&points);
    table.push_row(vec![
        "fit".to_string(),
        format!("exponent {}", fmt_num(fit.exponent)),
        format!("R² {}", fmt_num(fit.r_squared)),
        "paper: 1.5".to_string(),
    ]);
    table
}

fn cycle_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[16u32, 32, 64][..], &[32u32, 64, 128, 256, 512][..]);
    let trials = cfg.trials(10, 40);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x6E);
    let mut table = Table::new(
        "Cycle cover isolation times",
        "Lemma 37: cycles are Ω(n²)-renitent — Y(C) of the four-arc cover grows ~ n² and survives c·n² with prob ≥ 1/2",
        &["n", "mean Y", "Y/n²", "Pr[Y ≥ n²/32]"],
    );
    let mut points = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let (g, cover) = cycle_cover(n);
        let est = estimate_isolation(&g, &cover, trials, u64::MAX, seq.child(i as u64));
        let n2 = f64::from(n) * f64::from(n);
        points.push((f64::from(n), est.times.mean()));
        table.push_row(vec![
            n.to_string(),
            fmt_num(est.times.mean()),
            fmt_num(est.times.mean() / n2),
            fmt_num(est.survival_at(n2 / 32.0)),
        ]);
    }
    let fit = power_fit(&points);
    table.push_row(vec![
        "fit".to_string(),
        format!("exponent {}", fmt_num(fit.exponent)),
        format!("R² {}", fmt_num(fit.r_squared)),
        "paper: 2".to_string(),
    ]);
    table
}

fn lemma38_table(cfg: &RunConfig) -> Table {
    let ells: &[u32] = cfg.pick(&[4u32, 8, 16][..], &[4u32, 8, 16, 32, 64][..]);
    let trials = cfg.trials(10, 40);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x6F);
    let base = families::clique(6);
    let mut table = Table::new(
        "Lemma 38 ring construction isolation times",
        "Four copies of K6 joined by length-2l paths: Y(C) ~ l·m and B(G) ∈ Ω(l·m)",
        &["l", "n", "m", "mean Y", "Y/(l·m)", "B measured", "B/(l·m)"],
    );
    let mut points = Vec::new();
    for (i, &ell) in ells.iter().enumerate() {
        let (g, cover) = lemma38(&base, 0, ell);
        let est = estimate_isolation(&g, &cover, trials, u64::MAX, seq.child(i as u64));
        let b = estimate_broadcast_time(
            &g,
            seq.child(1000 + i as u64),
            &BroadcastConfig {
                sources: SourceStrategy::Explicit(vec![0]),
                trials_per_source: cfg.trials(4, 16),
                threads: cfg.threads,
            },
        )
        .b_estimate;
        let lm = f64::from(ell) * g.num_edges() as f64;
        points.push((lm, est.times.mean()));
        table.push_row(vec![
            ell.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            fmt_num(est.times.mean()),
            fmt_num(est.times.mean() / lm),
            fmt_num(b),
            fmt_num(b / lm),
        ]);
    }
    let fit = power_fit(&points);
    table.push_row(vec![
        "fit".to_string(),
        String::new(),
        String::new(),
        format!("exp {}", fmt_num(fit.exponent)),
        format!("R² {}", fmt_num(fit.r_squared)),
        "paper: 1 in l·m".to_string(),
        String::new(),
    ]);
    table
}

fn theorem39_table(cfg: &RunConfig) -> Table {
    let sizes: &[u32] = cfg.pick(&[8u32, 12, 16][..], &[8u32, 16, 24, 32][..]);
    let trials = cfg.trials(4, 12);
    let seq = SeedSeq::new(cfg.master_seed ^ 0x70);
    let mut table = Table::new(
        "Theorem 39: graphs with prescribed election time",
        "Targets T(n): both broadcast time and identifier-protocol stabilization track Θ(T)",
        &[
            "target",
            "base n",
            "graph n",
            "T target",
            "B measured",
            "B/T",
            "election mean",
            "election/T",
        ],
    );
    // Two targets in the theorem's admissible range [n log n, n³],
    // exercising the star regime (n^1.5) and the clique regime (n^2.7).
    #[allow(clippy::type_complexity)]
    let targets: [(&str, fn(f64) -> f64); 2] =
        [("n^1.5", |x| x.powf(1.5)), ("n^2.7", |x| x.powf(2.7))];
    for (ti, (tlabel, tf)) in targets.into_iter().enumerate() {
        for (si, &base_n) in sizes.iter().enumerate() {
            let nf = f64::from(base_n);
            let target = tf(nf).max(nf * nf.ln() * 1.01);
            let (g, _cover) = theorem39_graph(base_n, target);
            let child = seq.child((ti * 100 + si) as u64);
            let b = estimate_broadcast_time(
                &g,
                child,
                &BroadcastConfig {
                    sources: SourceStrategy::Heuristic(2),
                    trials_per_source: cfg.trials(3, 10),
                    threads: cfg.threads,
                },
            )
            .b_estimate;
            let k = identifier_bits(g.num_nodes(), false);
            let p = IdentifierProtocol::new(k);
            let stats = protocol_stats(&g, &p, child ^ 0x5A5A, trials, cfg.threads, false);
            table.push_row(vec![
                tlabel.to_string(),
                base_n.to_string(),
                g.num_nodes().to_string(),
                fmt_num(target),
                fmt_num(b),
                fmt_num(b / target),
                fmt_num(stats.steps.mean()),
                fmt_num(stats.steps.mean() / target),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_isolation_quadratic() {
        let cfg = RunConfig::default();
        let t = cycle_table(&cfg);
        let fit_row = t.num_rows() - 1;
        let exp_text = t.cell(fit_row, 1);
        let exponent: f64 = exp_text.trim_start_matches("exponent ").parse().unwrap();
        assert!(
            (exponent - 2.0).abs() < 0.4,
            "cycle isolation exponent {exponent}"
        );
        // Survival at n²/32 should be at least 1/2 (the t-isolating
        // property with a concrete constant).
        for row in 0..fit_row {
            let survival: f64 = t.cell(row, 3).parse().unwrap();
            assert!(survival >= 0.5, "row {row}: survival {survival}");
        }
    }

    #[test]
    fn torus_isolation_matches_three_halves() {
        let cfg = RunConfig::default();
        let t = torus_table(&cfg);
        let fit_row = t.num_rows() - 1;
        let exponent: f64 = t
            .cell(fit_row, 1)
            .trim_start_matches("exponent ")
            .parse()
            .unwrap();
        assert!(
            (exponent - 1.5).abs() < 0.3,
            "torus isolation exponent {exponent}, paper predicts 1.5"
        );
    }

    #[test]
    fn lemma38_isolation_linear_in_lm() {
        let cfg = RunConfig::default();
        let t = lemma38_table(&cfg);
        let fit_row = t.num_rows() - 1;
        let exp_text = t.cell(fit_row, 3);
        let exponent: f64 = exp_text.trim_start_matches("exp ").parse().unwrap();
        assert!(
            (exponent - 1.0).abs() < 0.3,
            "Lemma 38 isolation exponent in l·m: {exponent}"
        );
    }

    #[test]
    fn theorem39_tracks_target() {
        let cfg = RunConfig::default();
        let t = theorem39_table(&cfg);
        for row in 0..t.num_rows() {
            let b_ratio: f64 = t.cell(row, 5).parse().unwrap();
            let e_ratio: f64 = t.cell(row, 7).parse().unwrap();
            // Θ(T): ratios bounded above and below across the sweep.
            assert!(
                b_ratio > 0.05 && b_ratio < 100.0,
                "row {row}: B/T = {b_ratio}"
            );
            assert!(
                e_ratio > 0.05 && e_ratio < 200.0,
                "row {row}: election/T = {e_ratio}"
            );
        }
    }
}
