//! Named graph workloads used across experiments.
//!
//! Each [`Family`] maps a nominal size to a concrete graph; random
//! families receive deterministic seeds. These are the graph classes of
//! the paper's Table 1 plus supporting families used by individual
//! lemmas. Experiments, sweep campaigns and the CLI all speak in these
//! names (`--families cycle,torus`), so a family label appearing in a
//! results file always denotes the same construction.
//!
//! # Examples
//!
//! Generate a Table 1 workload and feed it to an executor:
//!
//! ```
//! use popele_lab::workloads::Family;
//! use popele_engine::Executor;
//! use popele_core::TokenProtocol;
//!
//! // The torus rounds its nominal size to a square; generation is
//! // deterministic in (family, size, seed).
//! let g = Family::Torus.generate(20, 7);
//! assert_eq!(g.num_nodes(), 16);
//! assert_eq!(g, Family::Torus.generate(20, 7));
//!
//! let outcome = Executor::new(&g, &TokenProtocol::all_candidates(), 1)
//!     .run_until_stable(10_000_000)
//!     .expect("token protocol stabilizes");
//! assert_eq!(outcome.leader_count, 1);
//! ```
//!
//! Labels round-trip through [`Family::parse`] (the CLI contract):
//!
//! ```
//! use popele_lab::workloads::Family;
//!
//! for family in Family::ALL {
//!     assert_eq!(Family::parse(family.label()), Some(family));
//! }
//! assert_eq!(Family::parse("hypercube"), Some(Family::Hypercube));
//! assert_eq!(Family::parse("petersen"), None);
//! ```

use popele_graph::{families, random, Graph};

/// A graph family with a nominal-size constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Complete graph `K_n` (Table 1 "Cliques").
    Clique,
    /// Cycle `C_n` (the canonical low-conductance renitent family).
    Cycle,
    /// Star `S_n` (Table 1 "Stars").
    Star,
    /// Near-square torus, 4-regular (Table 1 "Regular", low conductance).
    Torus,
    /// Random 4-regular graph (Table 1 "Regular", high conductance).
    RandomRegular4,
    /// Erdős–Rényi `G(n, 1/2)` conditioned connected (Table 1 "Dense
    /// random").
    DenseGnp,
    /// Hypercube `Q_{log n}` (regular, known expansion).
    Hypercube,
}

impl Family {
    /// The families appearing in Table 1 of the paper.
    pub const TABLE1: [Family; 6] = [
        Family::Clique,
        Family::Cycle,
        Family::Star,
        Family::Torus,
        Family::RandomRegular4,
        Family::DenseGnp,
    ];

    /// Every family, in the canonical order used by sweep campaigns.
    pub const ALL: [Family; 7] = [
        Family::Clique,
        Family::Cycle,
        Family::Star,
        Family::Torus,
        Family::RandomRegular4,
        Family::DenseGnp,
        Family::Hypercube,
    ];

    /// Parses a [`Self::label`] back into the family (CLI use).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|f| f.label() == name)
    }

    /// Upper estimate of the edge count of the size-`n` member, used by
    /// sweep campaigns to refuse cells whose explicit edge list would
    /// not fit in memory (a `clique(50_000)` has 1.25 billion edges).
    ///
    /// # Examples
    ///
    /// ```
    /// use popele_lab::workloads::Family;
    ///
    /// assert_eq!(Family::Cycle.approx_edges(1000), 1000);
    /// assert_eq!(Family::Clique.approx_edges(1000), 499_500);
    /// // Estimates upper-bound the generated graph.
    /// let g = Family::RandomRegular4.generate(100, 3);
    /// assert!(g.num_edges() as u64 <= Family::RandomRegular4.approx_edges(100));
    /// ```
    #[must_use]
    pub fn approx_edges(self, n: u32) -> u64 {
        let n = u64::from(n);
        match self {
            Family::Clique => n * (n - 1) / 2,
            Family::Cycle => n,
            Family::Star => n - 1,
            Family::Torus | Family::RandomRegular4 => 2 * n,
            Family::DenseGnp => n * (n - 1) / 4 + n,
            Family::Hypercube => n / 2 * u64::from(64 - n.leading_zeros()),
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Family::Clique => "clique",
            Family::Cycle => "cycle",
            Family::Star => "star",
            Family::Torus => "torus",
            Family::RandomRegular4 => "rand-4-regular",
            Family::DenseGnp => "gnp-1/2",
            Family::Hypercube => "hypercube",
        }
    }

    /// Builds the family member of nominal size `n` (the actual node
    /// count may be rounded, e.g. to a square for the torus).
    ///
    /// # Panics
    ///
    /// Panics for degenerate sizes (`n < 4`).
    #[must_use]
    pub fn generate(self, n: u32, seed: u64) -> Graph {
        assert!(n >= 4, "workload sizes start at 4");
        match self {
            Family::Clique => families::clique(n),
            Family::Cycle => families::cycle(n),
            Family::Star => families::star(n),
            Family::Torus => {
                let side = (f64::from(n).sqrt().round() as u32).max(3);
                families::torus(side, side)
            }
            Family::RandomRegular4 => {
                let n = if n % 2 == 1 { n + 1 } else { n };
                random::random_regular_connected(n, 4, seed, 200)
            }
            Family::DenseGnp => random::erdos_renyi_connected(n, 0.5, seed, 200),
            Family::Hypercube => {
                let d = (32 - n.leading_zeros()).max(2) - 1; // ⌊log₂ n⌋
                families::hypercube(d)
            }
        }
    }

    /// The paper's predicted stabilization-time growth for each protocol
    /// on this family, as a human-readable expectation string used in
    /// report captions.
    #[must_use]
    pub fn expectation(self) -> &'static str {
        match self {
            Family::Clique => "token Θ(n²log n)?≤O(H·n·log n); id Θ(n log n); fast O(n log² n)",
            Family::Cycle => "token O(n³ log n); id Θ(n²); fast O(n² log n)",
            Family::Star => "token O(n² log n); id Θ(n log n); fast O(n log² n)",
            Family::Torus => "token O(n² log n); id Θ(n^1.5); fast O(n^1.5 log n)",
            Family::RandomRegular4 => "token O(n² log n); id Θ(n log n)/φ; fast O(φ⁻¹ n log² n)",
            Family::DenseGnp => "token Θ(n² log n); id Θ(n log n); fast O(n log² n)",
            Family::Hypercube => "regular family with β = 1",
        }
    }
}

/// The canonical exact-majority input split used by sweeps and
/// experiments: a 60/40 opinion split (initial `A` count), nudged off
/// an exact tie so a majority always exists. Sharing one definition
/// keeps the `faults` experiment's majority rows comparable to the
/// sweep's `majority/*` cells.
///
/// # Examples
///
/// ```
/// use popele_lab::workloads::majority_split;
///
/// assert_eq!(majority_split(100), 60);
/// // When the 60% floor lands exactly on n/2 (e.g. n = 4 → 2), the
/// // count is bumped so the split is never a tie.
/// assert_eq!(majority_split(4), 3);
/// ```
#[must_use]
pub fn majority_split(n: u32) -> u32 {
    let mut a = (u64::from(n) * 3 / 5).max(1) as u32;
    if 2 * a == n {
        a += 1;
    }
    a
}

/// Rough a-priori broadcast-time guess used to parameterize protocols
/// before the measured estimate is available (only the order of magnitude
/// matters — it feeds a `log₂`).
///
/// # Examples
///
/// ```
/// use popele_graph::families;
/// use popele_lab::workloads::broadcast_guess;
///
/// // Denser, shorter-diameter graphs broadcast faster per edge, but the
/// // guess grows with the edge count and diameter — compare a cycle to
/// // a clique of the same size.
/// let cycle = broadcast_guess(&families::cycle(64));
/// let clique = broadcast_guess(&families::clique(64));
/// assert!(cycle > 0.0 && clique > 0.0);
/// assert!(clique / 64.0 > cycle / 64.0, "clique has far more edges");
/// ```
#[must_use]
pub fn broadcast_guess(g: &Graph) -> f64 {
    let n = f64::from(g.num_nodes());
    let m = g.num_edges() as f64;
    let d = f64::from(popele_graph::properties::diameter_double_sweep(g)).max(1.0);
    m * (d + n.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::properties::is_connected;

    #[test]
    fn all_families_generate_connected_graphs() {
        for f in Family::TABLE1 {
            let g = f.generate(20, 7);
            assert!(is_connected(&g), "{} disconnected", f.label());
            assert!(g.num_nodes() >= 16, "{} too small", f.label());
        }
    }

    #[test]
    fn torus_rounds_to_square() {
        let g = Family::Torus.generate(20, 0);
        // √20 ≈ 4.47 → side 4 → 16 nodes.
        assert_eq!(g.num_nodes(), 16);
        assert!(g.is_regular());
    }

    #[test]
    fn hypercube_rounds_to_power_of_two() {
        let g = Family::Hypercube.generate(20, 0);
        assert_eq!(g.num_nodes(), 16);
    }

    #[test]
    fn regular_family_handles_odd_sizes() {
        let g = Family::RandomRegular4.generate(15, 3);
        assert_eq!(g.num_nodes(), 16);
        assert!(g.is_regular());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = Family::TABLE1.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Family::TABLE1.len());
    }

    #[test]
    fn broadcast_guess_positive_and_monotone_in_m() {
        let small = broadcast_guess(&families::cycle(16));
        let large = broadcast_guess(&families::cycle(64));
        assert!(small > 0.0);
        assert!(large > small);
    }

    #[test]
    fn deterministic_random_families() {
        let a = Family::DenseGnp.generate(24, 5);
        let b = Family::DenseGnp.generate(24, 5);
        assert_eq!(a, b);
    }
}
