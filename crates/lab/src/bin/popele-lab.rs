//! Experiment CLI: regenerates the paper's tables.
//!
//! ```text
//! popele-lab [EXPERIMENT ...] [--quick|--full] [--seed N] [--threads N] [--out DIR]
//!
//! EXPERIMENT ∈ {table1, broadcast, propagation, walks, clocks, renitent, dense, all}
//! ```
//!
//! Tables are printed to stdout and written as CSV under `--out`
//! (default `results/`).

use popele_lab::{ExperimentId, RunConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: popele-lab [EXPERIMENT ...] [--quick|--full] [--seed N] [--threads N] [--out DIR]\n\
         experiments: all {}",
        ExperimentId::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = RunConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut selected: Vec<ExperimentId> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--full" => cfg.quick = false,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.master_seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            "all" => selected.extend(ExperimentId::ALL),
            name => match ExperimentId::parse(name) {
                Some(id) => selected.push(id),
                None => {
                    eprintln!("unknown experiment: {name}");
                    usage()
                }
            },
        }
    }
    if selected.is_empty() {
        selected.extend(ExperimentId::ALL);
    }
    selected.dedup();

    println!(
        "# popele-lab — mode: {}, seed: {}, experiments: {}",
        if cfg.quick { "quick" } else { "full" },
        cfg.master_seed,
        selected
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    for id in selected {
        println!("\n################ {id} ################");
        let started = std::time::Instant::now();
        let tables = id.run(&cfg);
        for table in &tables {
            println!("\n{}", table.render());
            match table.write_csv(&out_dir) {
                Ok(path) => println!("   [csv] {}", path.display()),
                Err(e) => eprintln!("   [csv] write failed: {e}"),
            }
        }
        println!("# {id} finished in {:.1?}", started.elapsed());
    }
    ExitCode::SUCCESS
}
