//! Experiment CLI: regenerates the paper's tables and runs sweep
//! campaigns.
//!
//! ```text
//! popele-lab [EXPERIMENT ...] [--quick|--full] [--seed N] [--threads N] [--out DIR]
//! popele-lab sweep [--quick|--full] [--name NAME] [--protocols P,..] [--families F,..]
//!                  [--sizes N,..] [--faults F,..] [--trials N] [--shard N] [--max-steps N]
//!                  [--max-edges N] [--seed N] [--threads N] [--workers N] [--out DIR]
//!                  [--max-shards N] [--lanes] [--fresh]
//! ```
//!
//! The experiment, protocol, family and fault-profile vocabularies are
//! **not** repeated here: `--help` derives every list from the live
//! registries (`ExperimentId::ALL`, `ProtocolSpec::ALL`, `Family::ALL`,
//! `FaultSpec::ALL`), so an entry added to a registry appears in the
//! usage text automatically — this doc cannot go stale the way a
//! hand-maintained enumeration does.
//!
//! Tables are printed to stdout and written as CSV under `--out`
//! (default `results/`); sweep campaigns additionally write a resumable
//! `checkpoint.json` and a `summary.json` under `--out/NAME/`.

use popele_lab::sweep::{run_campaign, CampaignOptions, FaultSpec, ProtocolSpec, SweepSpec};
use popele_lab::workloads::Family;
use popele_lab::{ExperimentId, RunConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: popele-lab [EXPERIMENT ...] [--quick|--full] [--seed N] [--threads N] [--out DIR]\n\
         \x20      popele-lab sweep [--quick|--full] [--name NAME] [--protocols P,..]\n\
         \x20                       [--families F,..] [--sizes N,..] [--faults F,..] [--trials N]\n\
         \x20                       [--shard N] [--max-steps N] [--max-edges N] [--seed N]\n\
         \x20                       [--threads N] [--workers N] [--out DIR] [--max-shards N]\n\
         \x20                       [--lanes] [--fresh]\n\
         experiments: all {}\n\
         sweep protocols: {}\n\
         sweep families: {}\n\
         sweep faults: {}",
        ExperimentId::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(" "),
        ProtocolSpec::ALL
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(" "),
        Family::ALL
            .iter()
            .map(|f| f.label())
            .collect::<Vec<_>>()
            .join(" "),
        FaultSpec::ALL
            .iter()
            .map(|f| f.label())
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2)
}

/// Parses a comma-separated list through `parse_one`, exiting with
/// usage on any bad element.
fn parse_list<T>(raw: &str, parse_one: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let items: Option<Vec<T>> = raw.split(',').map(|s| parse_one(s.trim())).collect();
    match items {
        Some(items) if !items.is_empty() => items,
        _ => {
            eprintln!("could not parse list: {raw}");
            usage()
        }
    }
}

/// Parses one population size for `--sizes`.
///
/// Count-engine grids reach `10⁷–10⁹`, where plain digit strings are
/// unreadable, so two spellings are accepted besides bare decimals:
/// underscore separators (`10_000_000`) and scientific notation (`1e7`,
/// `2.5e8`). A size must be an integer, at least 4 (the smallest
/// population the graph families generate) and at most `u32::MAX` (node
/// ids are 32-bit); anything else is a descriptive error, not a panic —
/// billion-agent grids are typed by hand.
fn parse_size(raw: &str) -> Result<u32, String> {
    const MAX: u64 = u32::MAX as u64;
    let digits: String = raw.chars().filter(|&c| c != '_').collect();
    let value = if digits.contains(['e', 'E']) {
        let f: f64 = digits
            .parse()
            .map_err(|_| format!("size {raw:?} is not a number"))?;
        if !(f.is_finite() && f.fract() == 0.0) {
            return Err(format!("size {raw:?} is not an integer"));
        }
        if f < 0.0 || f > MAX as f64 {
            return Err(format!(
                "size {raw:?} exceeds the 32-bit node-id limit ({MAX})"
            ));
        }
        f as u64
    } else {
        digits
            .parse::<u64>()
            .map_err(|_| format!("size {raw:?} is not a number"))?
    };
    if value > MAX {
        return Err(format!(
            "size {raw:?} exceeds the 32-bit node-id limit ({MAX})"
        ));
    }
    if value < 4 {
        return Err(format!("size {raw:?} is below the minimum population 4"));
    }
    Ok(value as u32)
}

/// Runs `popele-lab sweep ...`.
fn sweep_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut spec = SweepSpec::default();
    let mut options = CampaignOptions {
        progress: true,
        ..CampaignOptions::default()
    };
    let mut fresh = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--quick" => {}
            "--full" => {
                // Full mode: the paper-scale preset — more trials and a
                // budget that lets the quasilinear protocols finish at
                // the largest sizes (the slow pairs still time out; that
                // is the result).
                spec.trials_per_cell = 8;
                spec.shard_trials = 2;
                spec.max_steps = 400_000_000;
            }
            "--name" => spec.name = value("--name"),
            "--protocols" => {
                spec.protocols = parse_list(&value("--protocols"), ProtocolSpec::parse);
            }
            "--families" => spec.families = parse_list(&value("--families"), Family::parse),
            "--faults" => spec.faults = parse_list(&value("--faults"), FaultSpec::parse),
            "--sizes" => {
                let raw = value("--sizes");
                spec.sizes = parse_list(&raw, |s| match parse_size(s) {
                    Ok(n) => Some(n),
                    Err(e) => {
                        eprintln!("--sizes: {e}");
                        None
                    }
                });
            }
            "--trials" => {
                spec.trials_per_cell = value("--trials").parse().unwrap_or_else(|_| usage())
            }
            "--shard" => spec.shard_trials = value("--shard").parse().unwrap_or_else(|_| usage()),
            "--max-steps" => {
                spec.max_steps = value("--max-steps").parse().unwrap_or_else(|_| usage())
            }
            "--max-edges" => {
                spec.max_edges = value("--max-edges").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => spec.master_seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--threads" => spec.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            // Concurrent shard workers (0 = one per core). Outputs are
            // byte-identical for every worker count; see
            // `CampaignOptions::workers`.
            "--workers" => options.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--out" => options.out_dir = PathBuf::from(value("--out")),
            "--max-shards" => {
                options.interrupt_after =
                    Some(value("--max-shards").parse().unwrap_or_else(|_| usage()));
            }
            // Opt into the lane-parallel dense engine for eligible
            // shards; outputs are byte-identical either way (the lane
            // engine is per-trial trace-identical to the scalar one),
            // so the flag only changes wall-clock time.
            "--lanes" => options.lanes = true,
            "--fresh" => fresh = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown sweep flag: {other}");
                usage()
            }
        }
    }

    if !SweepSpec::valid_name(&spec.name) {
        eprintln!(
            "invalid campaign name {:?}: must be non-empty and free of path separators",
            spec.name
        );
        usage()
    }
    if fresh {
        std::fs::remove_dir_all(options.out_dir.join(&spec.name)).ok();
    }
    println!(
        "# popele-lab sweep — campaign: {}, grid: {} protocols × {} families × {} sizes × \
         {} fault profiles, {} trials/cell (shards of {}), budget {} steps/trial, seed {}",
        spec.name,
        spec.protocols.len(),
        spec.families.len(),
        spec.sizes.len(),
        spec.faults.len(),
        spec.trials_per_cell,
        spec.shard_trials.max(1),
        spec.max_steps,
        spec.master_seed
    );
    let started = std::time::Instant::now();
    match run_campaign(&spec, &options) {
        Ok(outcome) => {
            for table in &outcome.tables {
                println!("\n{}", table.render());
            }
            if outcome.completed {
                println!(
                    "# campaign complete in {:.1?}: {} shards run, {} resumed; outputs in {}",
                    started.elapsed(),
                    outcome.ran_shards,
                    outcome.resumed_shards,
                    outcome.dir.display()
                );
            } else {
                // A paused run prints no summary tables, so skipped
                // cells — recorded with reasons in the summary on
                // completion — would otherwise stay invisible across
                // every resume. Echo them here.
                let skipped: Vec<_> = spec
                    .cells()
                    .into_iter()
                    .filter_map(|c| spec.cell_skip_reason(&c).map(|r| (c, r)))
                    .collect();
                if !skipped.is_empty() {
                    println!("# {} cells are skipped:", skipped.len());
                    for (cell, reason) in skipped {
                        println!("#   {}: {}", cell.key(), reason);
                    }
                }
                println!(
                    "# campaign paused after {} shards ({} resumed) in {:.1?}; rerun the same \
                     command to continue from {}",
                    outcome.ran_shards,
                    outcome.resumed_shards,
                    started.elapsed(),
                    outcome.dir.join("checkpoint.json").display()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = RunConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut selected: Vec<ExperimentId> = Vec::new();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("sweep") {
        return sweep_main(argv.into_iter().skip(1));
    }
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--full" => cfg.quick = false,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.master_seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.threads = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            "all" => selected.extend(ExperimentId::ALL),
            name => match ExperimentId::parse(name) {
                Some(id) => selected.push(id),
                None => {
                    eprintln!("unknown experiment: {name}");
                    usage()
                }
            },
        }
    }
    if selected.is_empty() {
        selected.extend(ExperimentId::ALL);
    }
    selected.dedup();

    println!(
        "# popele-lab — mode: {}, seed: {}, experiments: {}",
        if cfg.quick { "quick" } else { "full" },
        cfg.master_seed,
        selected
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    for id in selected {
        println!("\n################ {id} ################");
        let started = std::time::Instant::now();
        let tables = id.run(&cfg);
        for table in &tables {
            println!("\n{}", table.render());
            match table.write_csv(&out_dir) {
                Ok(path) => println!("   [csv] {}", path.display()),
                Err(e) => eprintln!("   [csv] write failed: {e}"),
            }
        }
        println!("# {id} finished in {:.1?}", started.elapsed());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::parse_size;

    #[test]
    fn plain_and_separated_decimals() {
        assert_eq!(parse_size("4"), Ok(4));
        assert_eq!(parse_size("80000"), Ok(80_000));
        assert_eq!(parse_size("10_000_000"), Ok(10_000_000));
        assert_eq!(parse_size("1_000_000_000"), Ok(1_000_000_000));
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(parse_size("1e7"), Ok(10_000_000));
        assert_eq!(parse_size("1E9"), Ok(1_000_000_000));
        assert_eq!(parse_size("2.5e8"), Ok(250_000_000));
        assert_eq!(parse_size("4e0"), Ok(4));
    }

    #[test]
    fn overflow_is_a_clear_error_not_a_panic() {
        for raw in ["1e10", "50e9", "5_000_000_000", "18446744073709551616"] {
            let err = parse_size(raw).expect_err(raw);
            assert!(
                err.contains("32-bit") || err.contains("not a number"),
                "unhelpful error for {raw:?}: {err}"
            );
        }
    }

    #[test]
    fn non_integers_and_garbage_are_rejected() {
        assert!(parse_size("1.5e0").unwrap_err().contains("not an integer"));
        assert!(parse_size("nan").unwrap_err().contains("not a number"));
        assert!(parse_size("inf").unwrap_err().contains("not a number"));
        assert!(parse_size("").unwrap_err().contains("not a number"));
        assert!(parse_size("-8").unwrap_err().contains("not a number"));
    }

    #[test]
    fn tiny_populations_are_rejected() {
        assert!(parse_size("3").unwrap_err().contains("minimum population"));
        assert!(parse_size("0e5")
            .unwrap_err()
            .contains("minimum population"));
    }
}
