//! Experiment harness reproducing every table and quantitative claim of
//! *Near-Optimal Leader Election in Population Protocols on Graphs*
//! (PODC 2022).
//!
//! Each experiment in [`experiments`] regenerates one display item or
//! theorem-level claim of the paper (see DESIGN.md §4 for the full index
//! and EXPERIMENTS.md for recorded outcomes):
//!
//! | id | paper item | module |
//! |----|-----------|--------|
//! | `table1` | Table 1 complexity landscape | [`experiments::table1`] |
//! | `broadcast` | Theorem 6 + Lemma 12 + Theorem 15 | [`experiments::broadcast`] |
//! | `propagation` | Lemmas 13–14 | [`experiments::propagation`] |
//! | `walks` | Lemma 17/19, Proposition 20 | [`experiments::walks`] |
//! | `clocks` | Lemmas 26–29 | [`experiments::clocks`] |
//! | `renitent` | Lemmas 37–38, Theorem 39 | [`experiments::renitent`] |
//! | `dense` | Theorem 40/46, Lemmas 41–44, Section 7 | [`experiments::dense`] |
//! | `lowerbound` | Theorem 34 mechanism, Lemmas 35–36 | [`experiments::lowerbound`] |
//! | `conductance` | Corollary 25 on regular graphs | [`experiments::conductance`] |
//! | `ablation` | design-choice sweeps (h, L, α, k) | [`experiments::ablation`] |
//! | `majority` | Section 8 extension: exact majority | [`experiments::majority`] |
//! | `engine` | generic vs compiled engine equivalence/throughput | [`experiments::engine`] |
//! | `faults` | recovery under corruption/churn/rewiring (beyond the paper's model) | [`experiments::faults`] |
//! | `stabilize` | loose stabilization: elect-vs-hold tradeoff, re-election under bursts | [`experiments::stabilize`] |
//! | `pareto` | states-vs-time frontier across all protocol families (ROADMAP item 4) | [`experiments::pareto`] |
//!
//! Run everything with the CLI:
//!
//! ```text
//! cargo run --release -p popele-lab -- all --quick
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod sweep;
pub mod workloads;

use std::fmt;

/// Global experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Quick mode shrinks sizes and trial counts (~seconds per
    /// experiment); full mode reproduces the recorded EXPERIMENTS.md
    /// numbers (~minutes).
    pub quick: bool,
    /// Master seed; all randomness derives deterministically from it.
    pub master_seed: u64,
    /// Worker threads; `0` = one per core.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            quick: true,
            master_seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

impl RunConfig {
    /// Picks the quick or full variant of a parameter.
    #[must_use]
    pub fn pick<'a, T: ?Sized>(&self, quick: &'a T, full: &'a T) -> &'a T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Trials helper: quick runs use `quick`, full runs `full`.
    #[must_use]
    pub fn trials(&self, quick: usize, full: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Identifiers of the runnable experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 1: protocol × family stabilization landscape.
    Table1,
    /// Theorem 6 / Lemma 12 / Theorem 15 broadcast-time bounds.
    Broadcast,
    /// Lemmas 13–14 propagation-time lower bounds.
    Propagation,
    /// Hitting/meeting times and Proposition 20.
    Walks,
    /// Streak-clock statistics (Lemmas 26–29).
    Clocks,
    /// Renitent-graph lower bounds (Section 6).
    Renitent,
    /// Dense-random-graph results (Section 7).
    Dense,
    /// Theorem 34 indistinguishability demonstration (Lemmas 35–36).
    LowerBound,
    /// Corollary 25: conductance dependence on regular graphs.
    Conductance,
    /// Parameter ablations for the fast and identifier protocols.
    Ablation,
    /// Exact-majority extension (Section 8).
    Majority,
    /// Generic-vs-compiled engine equivalence and throughput.
    Engine,
    /// Recovery under fault injection (corruption, churn, rewiring).
    Faults,
    /// Loose stabilization: the elect-vs-hold tradeoff from arbitrary
    /// starts, and re-election times under corrupt bursts.
    Stabilize,
    /// States-vs-time Pareto frontier across every protocol family on
    /// its home graph (ROADMAP item 4).
    Pareto,
}

impl ExperimentId {
    /// All experiments, in recommended execution order. This array is
    /// the experiment registry: CLI parsing and the `--help` listing
    /// derive from it, so a new experiment registered here shows up in
    /// both automatically.
    pub const ALL: [ExperimentId; 15] = [
        ExperimentId::Engine,
        ExperimentId::Clocks,
        ExperimentId::Broadcast,
        ExperimentId::Propagation,
        ExperimentId::Walks,
        ExperimentId::Renitent,
        ExperimentId::Dense,
        ExperimentId::LowerBound,
        ExperimentId::Conductance,
        ExperimentId::Ablation,
        ExperimentId::Majority,
        ExperimentId::Faults,
        ExperimentId::Stabilize,
        ExperimentId::Pareto,
        ExperimentId::Table1,
    ];

    /// Parses a CLI name (derived from the registry — any
    /// [`Self::name`] round-trips).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// The CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Table1 => "table1",
            Self::Broadcast => "broadcast",
            Self::Propagation => "propagation",
            Self::Walks => "walks",
            Self::Clocks => "clocks",
            Self::Renitent => "renitent",
            Self::Dense => "dense",
            Self::LowerBound => "lowerbound",
            Self::Conductance => "conductance",
            Self::Ablation => "ablation",
            Self::Majority => "majority",
            Self::Engine => "engine",
            Self::Faults => "faults",
            Self::Stabilize => "stabilize",
            Self::Pareto => "pareto",
        }
    }

    /// Runs the experiment, returning its report tables.
    #[must_use]
    pub fn run(self, cfg: &RunConfig) -> Vec<report::Table> {
        match self {
            Self::Table1 => experiments::table1::run(cfg),
            Self::Broadcast => experiments::broadcast::run(cfg),
            Self::Propagation => experiments::propagation::run(cfg),
            Self::Walks => experiments::walks::run(cfg),
            Self::Clocks => experiments::clocks::run(cfg),
            Self::Renitent => experiments::renitent::run(cfg),
            Self::Dense => experiments::dense::run(cfg),
            Self::LowerBound => experiments::lowerbound::run(cfg),
            Self::Conductance => experiments::conductance::run(cfg),
            Self::Ablation => experiments::ablation::run(cfg),
            Self::Majority => experiments::majority::run(cfg),
            Self::Engine => experiments::engine::run(cfg),
            Self::Faults => experiments::faults::run(cfg),
            Self::Stabilize => experiments::stabilize::run(cfg),
            Self::Pareto => experiments::pareto::run(cfg),
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn config_pick_and_trials() {
        let quick = RunConfig::default();
        assert_eq!(*quick.pick(&1, &2), 1);
        assert_eq!(quick.trials(3, 9), 3);
        let full = RunConfig {
            quick: false,
            ..RunConfig::default()
        };
        assert_eq!(*full.pick(&1, &2), 2);
        assert_eq!(full.trials(3, 9), 9);
    }
}
