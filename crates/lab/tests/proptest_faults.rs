//! Property tests for the sweep layer's fault plumbing.
//!
//! * **JSON round trip**: any [`FaultPlan`] embedded into sweep
//!   artifacts via `sweep/json.rs` must come back value-identical, and
//!   its rendering must be byte-stable (`render ∘ parse ∘ render =
//!   render`) — the same canonical-serialization discipline the
//!   checkpoint/summary byte-identity guarantees rest on.
//! * **Stable fault seeds**: a faulted cell's seeds (and hence its
//!   fault realizations) derive from its stable cell key, exactly like
//!   trial seeds — independent of grid composition.

use popele_engine::faults::{fault_seed, FaultEvent, FaultKind, FaultPlan};
use popele_lab::sweep::{
    fault_plan_from_json, fault_plan_to_json, CellMeta, CellSpec, FaultSpec, HoldingRecord,
    JournalEntry, ProtocolSpec, SweepSpec, TrialRecord,
};
use popele_lab::workloads::Family;
use popele_math::rng::SeedSeq;
use proptest::prelude::*;

fn arbitrary_kind() -> impl Strategy<Value = FaultKind> {
    // The vendored proptest shim has no `prop_oneof!`; select the
    // variant from an index and reuse one parameter draw.
    (0usize..6, 1u32..=1000).prop_map(|(variant, param)| match variant {
        0 => FaultKind::CorruptNodes { count: param },
        1 => FaultKind::AddEdge,
        2 => FaultKind::RemoveEdge,
        3 => FaultKind::RewireEdge,
        4 => FaultKind::JoinNode {
            degree: param % 16 + 1,
        },
        _ => FaultKind::LeaveNode,
    })
}

fn arbitrary_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0u64..=1 << 40, arbitrary_kind()), 0..24).prop_map(|events| FaultPlan {
        events: events
            .into_iter()
            .map(|(step, kind)| FaultEvent { step, kind })
            .collect(),
    })
}

/// Strategy: one trial record as a sweep shard produces it (fault-free
/// cell, so no recovery block; holding attached per the protocol's
/// workload by the caller).
fn arbitrary_record() -> impl Strategy<Value = TrialRecord> {
    // The vendored proptest shim has no `prop::option`; draw a presence
    // bit next to each value instead.
    (
        0usize..1 << 16,
        (any::<bool>(), 0u64..1 << 40),
        (any::<bool>(), 0u32..1 << 20),
        (any::<bool>(), 0u64..1 << 40),
        any::<bool>(),
    )
        .prop_map(|(trial, steps, leader, hold, held_to_budget)| TrialRecord {
            trial,
            steps: steps.0.then_some(steps.1),
            leader: leader.0.then_some(leader.1),
            recovery: None,
            holding: Some(HoldingRecord {
                hold: hold.0.then_some(hold.1),
                held_to_budget,
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Serialize → render → parse → deserialize is the identity, and
    /// rendering is byte-stable.
    #[test]
    fn fault_plan_roundtrips_byte_identically(plan in arbitrary_plan()) {
        let json = fault_plan_to_json(&plan);
        let text = json.render();
        let reparsed = popele_lab::sweep::json::Json::parse(&text)
            .expect("canonical rendering parses");
        prop_assert_eq!(&reparsed.render(), &text, "rendering drifted");
        let back = fault_plan_from_json(&reparsed).expect("canonical representation decodes");
        prop_assert_eq!(back, plan);
    }

    /// Fault-profile plans are pure functions of (profile, n).
    #[test]
    fn fault_profiles_are_pure(n in 4u32..1_000_000, idx in 0usize..4) {
        let profile = FaultSpec::ALL[idx];
        prop_assert_eq!(profile.plan(n), profile.plan(n));
    }

    /// A faulted cell's master seed derives from its stable key alone:
    /// reshaping the rest of the grid never moves it, and distinct
    /// fault profiles of the same (protocol, family, size) get distinct
    /// seeds (hence independent fault realizations).
    #[test]
    fn fault_cell_seeds_derive_from_stable_keys(
        size in 4u32..100_000,
        seed in any::<u64>(),
        extra_size in 4u32..100_000,
    ) {
        let cell = |fault| CellSpec {
            protocol: ProtocolSpec::Token,
            family: Family::Cycle,
            size,
            fault,
        };
        let small = SweepSpec {
            protocols: vec![ProtocolSpec::Token],
            families: vec![Family::Cycle],
            sizes: vec![size],
            faults: vec![FaultSpec::None, FaultSpec::Corrupt],
            master_seed: seed,
            ..SweepSpec::default()
        };
        let mut bigger = small.clone();
        bigger.protocols.push(ProtocolSpec::Majority);
        bigger.families.push(Family::Star);
        bigger.sizes.push(extra_size);
        bigger.faults.push(FaultSpec::Rewire);

        for fault in [FaultSpec::None, FaultSpec::Corrupt] {
            prop_assert_eq!(
                small.cell_seed(&cell(fault)),
                bigger.cell_seed(&cell(fault)),
                "grid composition leaked into a cell seed"
            );
        }
        // The fault axis separates seeds; the fault-free cell keeps the
        // pre-fault-axis derivation (key without a fault suffix).
        prop_assert_ne!(
            small.cell_seed(&cell(FaultSpec::None)),
            small.cell_seed(&cell(FaultSpec::Corrupt))
        );
        let legacy_key = format!("token/cycle/{size}");
        prop_assert_eq!(cell(FaultSpec::None).key(), legacy_key);

        // Per-trial fault seeds chain from the cell seed through the
        // trial index — the same derivation discipline as trial seeds.
        let cell_seed = small.cell_seed(&cell(FaultSpec::Corrupt));
        let trial_seed = SeedSeq::new(cell_seed).child(0);
        prop_assert_eq!(fault_seed(trial_seed), fault_seed(trial_seed));
        prop_assert_ne!(fault_seed(trial_seed), trial_seed);
    }

    /// Journal lines for the two states-vs-time corner protocols
    /// (`space-opt`, `ring-time-opt`) round-trip byte-identically
    /// through `sweep/json.rs` — including the holding block the
    /// stabilizing ring cells attach — and their cell keys parse back
    /// to the right [`ProtocolSpec`] variant. This is the resume path:
    /// a checkpoint written by a campaign over the new protocols must
    /// reload value-identical.
    #[test]
    fn corner_protocol_journal_lines_roundtrip(
        which in 0usize..2,
        size in 4u32..1_000_000,
        shard in 0usize..64,
        records in prop::collection::vec(arbitrary_record(), 0..12),
    ) {
        let (protocol, family) = [
            (ProtocolSpec::SpaceOpt, Family::Clique),
            (ProtocolSpec::RingTimeOpt, Family::Cycle),
        ][which];
        // Holding metrics exist exactly on the stabilizing workload.
        let records: Vec<TrialRecord> = records
            .into_iter()
            .map(|mut r| {
                if !protocol.is_stabilizing() {
                    r.holding = None;
                }
                r
            })
            .collect();
        let cell = CellSpec { protocol, family, size, fault: FaultSpec::None };
        let entry = JournalEntry {
            shard_key: format!("{}/s{shard}", cell.key()),
            cell_key: cell.key(),
            meta: CellMeta { n: size, m: u64::from(size) * 3 },
            records,
        };
        let line = entry.render_line();
        let back = JournalEntry::from_line(&line).expect("canonical journal line parses");
        prop_assert_eq!(back.render_line(), line, "rendering drifted");
        prop_assert_eq!(back, entry);
        // The key's protocol segment is the stable label: it must parse
        // back to the same variant (checkpoint ↔ spec addressing).
        let segment = cell.key();
        let segment = segment.split('/').next().unwrap().to_string();
        prop_assert_eq!(ProtocolSpec::parse(&segment), Some(protocol));
    }
}
