//! Property tests for the sweep layer's fault plumbing.
//!
//! * **JSON round trip**: any [`FaultPlan`] embedded into sweep
//!   artifacts via `sweep/json.rs` must come back value-identical, and
//!   its rendering must be byte-stable (`render ∘ parse ∘ render =
//!   render`) — the same canonical-serialization discipline the
//!   checkpoint/summary byte-identity guarantees rest on.
//! * **Stable fault seeds**: a faulted cell's seeds (and hence its
//!   fault realizations) derive from its stable cell key, exactly like
//!   trial seeds — independent of grid composition.

use popele_engine::faults::{fault_seed, FaultEvent, FaultKind, FaultPlan};
use popele_lab::sweep::{
    fault_plan_from_json, fault_plan_to_json, CellSpec, FaultSpec, ProtocolSpec, SweepSpec,
};
use popele_lab::workloads::Family;
use popele_math::rng::SeedSeq;
use proptest::prelude::*;

fn arbitrary_kind() -> impl Strategy<Value = FaultKind> {
    // The vendored proptest shim has no `prop_oneof!`; select the
    // variant from an index and reuse one parameter draw.
    (0usize..6, 1u32..=1000).prop_map(|(variant, param)| match variant {
        0 => FaultKind::CorruptNodes { count: param },
        1 => FaultKind::AddEdge,
        2 => FaultKind::RemoveEdge,
        3 => FaultKind::RewireEdge,
        4 => FaultKind::JoinNode {
            degree: param % 16 + 1,
        },
        _ => FaultKind::LeaveNode,
    })
}

fn arbitrary_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0u64..=1 << 40, arbitrary_kind()), 0..24).prop_map(|events| FaultPlan {
        events: events
            .into_iter()
            .map(|(step, kind)| FaultEvent { step, kind })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Serialize → render → parse → deserialize is the identity, and
    /// rendering is byte-stable.
    #[test]
    fn fault_plan_roundtrips_byte_identically(plan in arbitrary_plan()) {
        let json = fault_plan_to_json(&plan);
        let text = json.render();
        let reparsed = popele_lab::sweep::json::Json::parse(&text)
            .expect("canonical rendering parses");
        prop_assert_eq!(&reparsed.render(), &text, "rendering drifted");
        let back = fault_plan_from_json(&reparsed).expect("canonical representation decodes");
        prop_assert_eq!(back, plan);
    }

    /// Fault-profile plans are pure functions of (profile, n).
    #[test]
    fn fault_profiles_are_pure(n in 4u32..1_000_000, idx in 0usize..4) {
        let profile = FaultSpec::ALL[idx];
        prop_assert_eq!(profile.plan(n), profile.plan(n));
    }

    /// A faulted cell's master seed derives from its stable key alone:
    /// reshaping the rest of the grid never moves it, and distinct
    /// fault profiles of the same (protocol, family, size) get distinct
    /// seeds (hence independent fault realizations).
    #[test]
    fn fault_cell_seeds_derive_from_stable_keys(
        size in 4u32..100_000,
        seed in any::<u64>(),
        extra_size in 4u32..100_000,
    ) {
        let cell = |fault| CellSpec {
            protocol: ProtocolSpec::Token,
            family: Family::Cycle,
            size,
            fault,
        };
        let small = SweepSpec {
            protocols: vec![ProtocolSpec::Token],
            families: vec![Family::Cycle],
            sizes: vec![size],
            faults: vec![FaultSpec::None, FaultSpec::Corrupt],
            master_seed: seed,
            ..SweepSpec::default()
        };
        let mut bigger = small.clone();
        bigger.protocols.push(ProtocolSpec::Majority);
        bigger.families.push(Family::Star);
        bigger.sizes.push(extra_size);
        bigger.faults.push(FaultSpec::Rewire);

        for fault in [FaultSpec::None, FaultSpec::Corrupt] {
            prop_assert_eq!(
                small.cell_seed(&cell(fault)),
                bigger.cell_seed(&cell(fault)),
                "grid composition leaked into a cell seed"
            );
        }
        // The fault axis separates seeds; the fault-free cell keeps the
        // pre-fault-axis derivation (key without a fault suffix).
        prop_assert_ne!(
            small.cell_seed(&cell(FaultSpec::None)),
            small.cell_seed(&cell(FaultSpec::Corrupt))
        );
        let legacy_key = format!("token/cycle/{size}");
        prop_assert_eq!(cell(FaultSpec::None).key(), legacy_key);

        // Per-trial fault seeds chain from the cell seed through the
        // trial index — the same derivation discipline as trial seeds.
        let cell_seed = small.cell_seed(&cell(FaultSpec::Corrupt));
        let trial_seed = SeedSeq::new(cell_seed).child(0);
        prop_assert_eq!(fault_seed(trial_seed), fault_seed(trial_seed));
        prop_assert_ne!(fault_seed(trial_seed), trial_seed);
    }
}
