//! The sweep reproducibility contract, end to end: a campaign's
//! `checkpoint.json` and `summary.json` must be **byte**-identical
//! across interrupt-and-resume cycles and across thread counts.
//!
//! Interruption is simulated with `CampaignOptions::interrupt_after`,
//! which stops the runner between shards — exactly where a kill lands,
//! up to the shard in flight, which a real kill would simply lose and a
//! resume re-run (checkpoint saves are atomic: temp file + rename, so a
//! kill mid-save leaves the previous checkpoint intact).

use popele_lab::sweep::{
    checkpoint_path, run_campaign, summary_path, CampaignOptions, Checkpoint, FaultSpec,
    ProtocolSpec, SweepSpec,
};
use popele_lab::workloads::Family;
use std::path::{Path, PathBuf};

fn spec(threads: usize) -> SweepSpec {
    SweepSpec {
        name: "campaign".into(),
        protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
        families: vec![Family::Clique, Family::Cycle, Family::Star],
        sizes: vec![8, 16],
        trials_per_cell: 5,
        shard_trials: 2,
        max_steps: 1 << 22,
        master_seed: 0xAB5EED,
        threads,
        max_edges: 1 << 20,
        ..SweepSpec::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("popele-sweep-resume-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn output_bytes(dir: &Path) -> (String, String) {
    let campaign = dir.join("campaign");
    (
        std::fs::read_to_string(checkpoint_path(&campaign)).unwrap(),
        std::fs::read_to_string(summary_path(&campaign)).unwrap(),
    )
}

/// 2 protocols × 3 families × 2 sizes, 5 trials in shards of 2 → 12
/// cells × 3 shards.
const TOTAL_SHARDS: usize = 36;

#[test]
fn interrupted_resumed_campaign_is_byte_identical_to_a_straight_run() {
    // Reference: one uninterrupted single-threaded run.
    let straight_dir = temp_dir("straight");
    let outcome = run_campaign(
        &spec(1),
        &CampaignOptions {
            out_dir: straight_dir.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.ran_shards, TOTAL_SHARDS);
    let (straight_ckpt, straight_summary) = output_bytes(&straight_dir);

    // Same campaign, killed twice mid-grid and resumed each time with a
    // *different* thread count — neither interruption points nor thread
    // counts may leak into the outputs.
    let resumed_dir = temp_dir("resumed");
    let opts = |interrupt_after| CampaignOptions {
        out_dir: resumed_dir.clone(),
        interrupt_after,
        ..CampaignOptions::default()
    };
    let first = run_campaign(&spec(2), &opts(Some(5))).unwrap();
    assert!(!first.completed);
    assert_eq!(first.ran_shards, 5);
    // The mid-grid checkpoint is already a valid, loadable artifact
    // holding exactly the shards run so far.
    let partial = Checkpoint::load(&checkpoint_path(&resumed_dir.join("campaign"))).unwrap();
    assert_eq!(partial.shards.len(), 5);

    let second = run_campaign(&spec(4), &opts(Some(13))).unwrap();
    assert!(!second.completed);
    assert_eq!(second.resumed_shards, 5);
    assert_eq!(second.ran_shards, 13);

    let last = run_campaign(&spec(3), &opts(None)).unwrap();
    assert!(last.completed);
    assert_eq!(last.resumed_shards, 18);
    assert_eq!(last.ran_shards, TOTAL_SHARDS - 18);

    let (resumed_ckpt, resumed_summary) = output_bytes(&resumed_dir);
    assert_eq!(straight_ckpt, resumed_ckpt, "checkpoint bytes diverged");
    assert_eq!(straight_summary, resumed_summary, "summary bytes diverged");

    std::fs::remove_dir_all(&straight_dir).ok();
    std::fs::remove_dir_all(&resumed_dir).ok();
}

#[test]
fn thread_count_does_not_change_campaign_outputs() {
    let dir_a = temp_dir("threads-1");
    let dir_b = temp_dir("threads-8");
    run_campaign(
        &spec(1),
        &CampaignOptions {
            out_dir: dir_a.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    run_campaign(
        &spec(8),
        &CampaignOptions {
            out_dir: dir_b.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert_eq!(output_bytes(&dir_a), output_bytes(&dir_b));
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// A grid with a nonzero fault axis: every fault profile, including the
/// churn/rewire ones that mutate topology mid-trial.
fn faulted_spec(threads: usize) -> SweepSpec {
    SweepSpec {
        name: "faulted".into(),
        protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
        families: vec![Family::Clique, Family::Cycle],
        sizes: vec![8, 16],
        faults: vec![
            FaultSpec::None,
            FaultSpec::Corrupt,
            FaultSpec::Churn,
            FaultSpec::Rewire,
        ],
        trials_per_cell: 3,
        shard_trials: 2,
        max_steps: 1 << 22,
        master_seed: 0xFA017,
        threads,
        max_edges: 1 << 20,
    }
}

#[test]
fn faulted_campaign_outputs_are_byte_identical_across_threads_and_resume() {
    // Straight single-threaded reference run.
    let straight_dir = temp_dir("faulted-straight");
    let outcome = run_campaign(
        &faulted_spec(1),
        &CampaignOptions {
            out_dir: straight_dir.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.completed);
    let (straight_ckpt, straight_summary) = output_bytes_of(&straight_dir, "faulted");

    // Fault cells actually recorded recovery metrics.
    let ckpt = Checkpoint::load(&checkpoint_path(&straight_dir.join("faulted"))).unwrap();
    let corrupt_records = ckpt.cell_records("token/clique/8/corrupt");
    assert_eq!(corrupt_records.len(), 3);
    assert!(corrupt_records.iter().all(|r| r.recovery.is_some()));
    let clean_records = ckpt.cell_records("token/clique/8");
    assert_eq!(clean_records.len(), 3);
    assert!(clean_records.iter().all(|r| r.recovery.is_none()));
    // The summary carries the recovery digest.
    assert!(straight_summary.contains("\"recovery\""));

    // Interrupted twice, resumed with different thread counts.
    let resumed_dir = temp_dir("faulted-resumed");
    let opts = |interrupt_after| CampaignOptions {
        out_dir: resumed_dir.clone(),
        interrupt_after,
        ..CampaignOptions::default()
    };
    let first = run_campaign(&faulted_spec(2), &opts(Some(7))).unwrap();
    assert!(!first.completed);
    let second = run_campaign(&faulted_spec(4), &opts(Some(19))).unwrap();
    assert!(!second.completed);
    let last = run_campaign(&faulted_spec(3), &opts(None)).unwrap();
    assert!(last.completed);

    let (resumed_ckpt, resumed_summary) = output_bytes_of(&resumed_dir, "faulted");
    assert_eq!(straight_ckpt, resumed_ckpt, "checkpoint bytes diverged");
    assert_eq!(straight_summary, resumed_summary, "summary bytes diverged");

    std::fs::remove_dir_all(&straight_dir).ok();
    std::fs::remove_dir_all(&resumed_dir).ok();
}

fn output_bytes_of(dir: &Path, name: &str) -> (String, String) {
    let campaign = dir.join(name);
    (
        std::fs::read_to_string(checkpoint_path(&campaign)).unwrap(),
        std::fs::read_to_string(summary_path(&campaign)).unwrap(),
    )
}

/// A grid over the self-stabilization family: arbitrary per-trial start
/// configurations, holding metrics in every record, corrupt bursts on
/// the fault axis.
fn stabilizing_spec(threads: usize) -> SweepSpec {
    SweepSpec {
        name: "stabilizing".into(),
        protocols: vec![ProtocolSpec::Loose, ProtocolSpec::RingLoose],
        families: vec![Family::Clique, Family::Cycle],
        sizes: vec![8, 16],
        faults: vec![FaultSpec::None, FaultSpec::Corrupt],
        trials_per_cell: 3,
        shard_trials: 2,
        max_steps: 1 << 21,
        master_seed: 0x5AB1E,
        threads,
        max_edges: 1 << 20,
    }
}

#[test]
fn stabilizing_campaign_outputs_are_byte_identical_across_threads_and_resume() {
    let straight_dir = temp_dir("stab-straight");
    let outcome = run_campaign(
        &stabilizing_spec(1),
        &CampaignOptions {
            out_dir: straight_dir.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.completed);
    let (straight_ckpt, straight_summary) = output_bytes_of(&straight_dir, "stabilizing");

    // Every stabilizing record carries holding metrics; faulted cells
    // additionally carry recovery; the ring variant ran only on cycles.
    let ckpt = Checkpoint::load(&checkpoint_path(&straight_dir.join("stabilizing"))).unwrap();
    let clean = ckpt.cell_records("loose/clique/8");
    assert_eq!(clean.len(), 3);
    assert!(clean.iter().all(|r| r.holding.is_some()));
    assert!(clean.iter().all(|r| r.recovery.is_none()));
    let corrupt = ckpt.cell_records("loose/clique/8/corrupt");
    assert!(corrupt.iter().all(|r| r.holding.is_some()));
    assert!(corrupt.iter().all(|r| r.recovery.is_some()));
    assert!(ckpt.cell_records("ring-loose/cycle/8").len() == 3);
    assert!(ckpt.cell_records("ring-loose/clique/8").is_empty());
    assert!(straight_summary.contains("\"holding\""));
    assert!(straight_summary.contains("\"held_to_budget\""));

    // Interrupted twice, resumed with different thread counts: holding
    // metrics obey the same byte-identity contract as everything else.
    let resumed_dir = temp_dir("stab-resumed");
    let opts = |interrupt_after| CampaignOptions {
        out_dir: resumed_dir.clone(),
        interrupt_after,
        ..CampaignOptions::default()
    };
    let first = run_campaign(&stabilizing_spec(2), &opts(Some(5))).unwrap();
    assert!(!first.completed);
    let second = run_campaign(&stabilizing_spec(4), &opts(Some(11))).unwrap();
    assert!(!second.completed);
    let last = run_campaign(&stabilizing_spec(3), &opts(None)).unwrap();
    assert!(last.completed);

    let (resumed_ckpt, resumed_summary) = output_bytes_of(&resumed_dir, "stabilizing");
    assert_eq!(straight_ckpt, resumed_ckpt, "checkpoint bytes diverged");
    assert_eq!(straight_summary, resumed_summary, "summary bytes diverged");

    std::fs::remove_dir_all(&straight_dir).ok();
    std::fs::remove_dir_all(&resumed_dir).ok();
}

#[test]
fn grid_extension_preserves_existing_cells() {
    // Adding a size to the grid must not change the numbers of cells
    // that were already in it: cell seeds derive from cell keys.
    let small = SweepSpec {
        sizes: vec![8],
        ..spec(1)
    };
    let big = SweepSpec {
        sizes: vec![8, 12],
        ..spec(1)
    };
    let dir_small = temp_dir("grid-small");
    let dir_big = temp_dir("grid-big");
    run_campaign(
        &small,
        &CampaignOptions {
            out_dir: dir_small.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    run_campaign(
        &big,
        &CampaignOptions {
            out_dir: dir_big.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    let ckpt_small = Checkpoint::load(&checkpoint_path(&dir_small.join("campaign"))).unwrap();
    let ckpt_big = Checkpoint::load(&checkpoint_path(&dir_big.join("campaign"))).unwrap();
    for (key, records) in &ckpt_small.shards {
        assert_eq!(
            ckpt_big.shards.get(key),
            Some(records),
            "cell {key} changed"
        );
    }
    std::fs::remove_dir_all(&dir_small).ok();
    std::fs::remove_dir_all(&dir_big).ok();
}
