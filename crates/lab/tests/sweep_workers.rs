//! The concurrent scheduler's side of the reproducibility contract:
//! worker counts, shard completion orders, and journal replay after a
//! kill must all leave `checkpoint.json` and `summary.json`
//! **byte**-identical to the serial, uninterrupted run.
//!
//! `sweep_resume.rs` covers interrupt/resume and intra-shard thread
//! counts; this file covers the PR-orthogonal axes: the work-stealing
//! worker pool (real out-of-order completion), adversarial completion
//! orders (every permutation class, via direct journal-entry replay),
//! and crash recovery from a stale checkpoint plus a journal with a
//! torn tail.

use popele_lab::sweep::{
    checkpoint_path, journal_path, run_campaign, summary_path, CampaignOptions, Checkpoint,
    FaultSpec, Journal, JournalEntry, ProtocolSpec, SweepSpec,
};
use popele_lab::workloads::Family;
use std::path::{Path, PathBuf};

/// A grid that exercises every runner path at once: fixed-start and
/// self-stabilizing protocols, a nonzero fault axis, shards small
/// enough that cells split across several of them.
fn mixed_spec() -> SweepSpec {
    SweepSpec {
        name: "mixed".into(),
        protocols: vec![
            ProtocolSpec::Token,
            ProtocolSpec::Majority,
            ProtocolSpec::Loose,
        ],
        families: vec![Family::Clique, Family::Cycle],
        sizes: vec![8, 16],
        faults: vec![FaultSpec::None, FaultSpec::Corrupt],
        trials_per_cell: 3,
        shard_trials: 2,
        max_steps: 1 << 21,
        master_seed: 0x30B5EED,
        threads: 1,
        max_edges: 1 << 20,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("popele-sweep-workers-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn output_bytes(dir: &Path, name: &str) -> (String, String) {
    let campaign = dir.join(name);
    (
        std::fs::read_to_string(checkpoint_path(&campaign)).unwrap(),
        std::fs::read_to_string(summary_path(&campaign)).unwrap(),
    )
}

/// Runs the reference serially, then the same grid under a 4-worker
/// pool (genuine out-of-order completion) and under a pool that is
/// additionally killed mid-grid and resumed with a different worker
/// count — all three must produce the same bytes.
#[test]
fn worker_pool_and_resume_are_byte_identical_to_serial() {
    let spec = mixed_spec();

    let serial_dir = temp_dir("serial");
    let outcome = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: serial_dir.clone(),
            workers: 1,
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.completed);
    let reference = output_bytes(&serial_dir, "mixed");

    let pooled_dir = temp_dir("pooled");
    let pooled = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: pooled_dir.clone(),
            workers: 4,
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(pooled.completed);
    assert_eq!(pooled.ran_shards, outcome.ran_shards);
    assert_eq!(output_bytes(&pooled_dir, "mixed"), reference);

    // Interrupt a 4-worker run mid-grid, finish with 2 workers: the
    // journal compacts on the graceful stop, and the resumed pool picks
    // up exactly the missing shards.
    let resumed_dir = temp_dir("pool-resumed");
    let first = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: resumed_dir.clone(),
            workers: 4,
            interrupt_after: Some(9),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(!first.completed);
    assert_eq!(first.ran_shards, 9);
    let last = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: resumed_dir.clone(),
            workers: 2,
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(last.completed);
    assert_eq!(last.resumed_shards, 9);
    assert_eq!(last.ran_shards, outcome.ran_shards - 9);
    assert_eq!(output_bytes(&resumed_dir, "mixed"), reference);

    std::fs::remove_dir_all(&serial_dir).ok();
    std::fs::remove_dir_all(&pooled_dir).ok();
    std::fs::remove_dir_all(&resumed_dir).ok();
}

/// Reconstructs each shard's journal entry from a completed campaign.
fn entries_of(spec: &SweepSpec, ckpt: &Checkpoint) -> Vec<JournalEntry> {
    spec.shards()
        .iter()
        .map(|shard| JournalEntry {
            shard_key: shard.key(),
            cell_key: shard.cell.key(),
            meta: ckpt.cells[&shard.cell.key()],
            records: ckpt.shards[&shard.key()].clone(),
        })
        .collect()
}

/// The checkpoint is an order-free merge: applying the same shard
/// results in *any* completion order — forward, reversed, or an
/// adversarial interleave no thread schedule is even likely to produce
/// — renders the same bytes. This is the invariant that lets the
/// worker pool skip all result reordering.
#[test]
fn shard_completion_order_cannot_change_checkpoint_bytes() {
    let spec = mixed_spec();
    let dir = temp_dir("permuted");
    let outcome = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: dir.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.completed);
    let reference = std::fs::read_to_string(checkpoint_path(&dir.join("mixed"))).unwrap();
    let ckpt = Checkpoint::from_text(&reference).unwrap();
    let entries = entries_of(&spec, &ckpt);

    let mut reversed: Vec<&JournalEntry> = entries.iter().collect();
    reversed.reverse();
    // A deterministic shuffle: stride through the list by a step
    // coprime to its length, hitting every index exactly once.
    let stride = (0..entries.len())
        .map(|i| &entries[(i * 17 + 5) % entries.len()])
        .collect::<Vec<_>>();
    // 17 is prime, so the stride is a permutation as long as the list
    // length is not a multiple of it.
    assert_ne!(entries.len() % 17, 0, "pick a different stride");
    for order in [reversed, stride] {
        let mut rebuilt = Checkpoint::new(&spec);
        for entry in order {
            rebuilt.apply_entry(entry);
        }
        assert_eq!(rebuilt.render(), reference, "order leaked into bytes");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Crash recovery, end to end: a stale `checkpoint.json`, a journal
/// holding shards completed after the last compaction, and a torn
/// final line (the kill landed mid-append). Resuming must replay the
/// journal, rerun only what was genuinely lost, and converge to the
/// reference bytes.
#[test]
fn resume_replays_journal_with_torn_tail_byte_exact() {
    let spec = mixed_spec();
    let reference_dir = temp_dir("journal-ref");
    let outcome = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: reference_dir.clone(),
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(outcome.completed);
    let reference = output_bytes(&reference_dir, "mixed");
    let ckpt = Checkpoint::from_text(&reference.0).unwrap();
    let entries = entries_of(&spec, &ckpt);
    let total = entries.len();

    // Stage the kill scene: checkpoint.json knows the first 6 shards,
    // the journal adds 3 more, and a 4th append was cut off mid-line.
    let crashed_dir = temp_dir("journal-crashed");
    let campaign = crashed_dir.join("mixed");
    std::fs::create_dir_all(&campaign).unwrap();
    let mut stale = Checkpoint::new(&spec);
    for entry in &entries[..6] {
        stale.apply_entry(entry);
    }
    stale.save(&checkpoint_path(&campaign)).unwrap();
    let (mut journal, replayed) =
        Journal::open(&journal_path(&campaign), &stale.fingerprint).unwrap();
    assert!(replayed.is_empty());
    for entry in &entries[6..9] {
        journal.append(entry).unwrap();
    }
    drop(journal);
    let torn = &entries[9].render_line()[..25];
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(journal_path(&campaign))
        .unwrap();
    file.write_all(torn.as_bytes()).unwrap();
    drop(file);

    // Resume: the 3 journaled shards count as resumed (not rerun), the
    // torn one is lost and rerun, and the outputs match the reference.
    let resumed = run_campaign(
        &spec,
        &CampaignOptions {
            out_dir: crashed_dir.clone(),
            workers: 2,
            ..CampaignOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.completed);
    assert_eq!(resumed.resumed_shards, 9);
    assert_eq!(resumed.ran_shards, total - 9);
    assert_eq!(output_bytes(&crashed_dir, "mixed"), reference);
    // The completed campaign cleans its journal up.
    assert!(!journal_path(&campaign).exists());

    std::fs::remove_dir_all(&reference_dir).ok();
    std::fs::remove_dir_all(&crashed_dir).ok();
}
