//! Seed-stream stability regression: the derived per-trial seed
//! streams are pinned by golden fingerprints.
//!
//! Every reproducibility guarantee in the workspace — trace-identical
//! engines, byte-identical checkpoints, grid-composition-independent
//! cells — bottoms out in three pure derivations:
//!
//! * **trial seeds**: `SeedSeq::new(master).child(t)`;
//! * **fault seeds**: [`fault_seed`]`(trial_seed)` (the `0xFA17`
//!   stream);
//! * **arbitrary-init seeds**: [`arbitrary_seed`]`(trial_seed)` (the
//!   `0xA5B1` stream).
//!
//! Changing any of them — a new mixer, a reordered stream constant, an
//! off-by-one in `child` — silently invalidates every recorded
//! checkpoint and golden artifact in the repo while all differential
//! tests keep passing (both engine sides drift together). The golden
//! fingerprints below are therefore *values*, not properties: they were
//! computed once from the current derivations and hardcoded, so any
//! change to the streams fails this suite loudly and forces a
//! deliberate decision. The proptests alongside them pin the structural
//! laws the sweep layer relies on (child/next_seed agreement,
//! stream-constant separation, master-seed sensitivity).

use popele_engine::faults::fault_seed;
use popele_engine::stabilize::arbitrary_seed;
use popele_lab::sweep::{CellSpec, FaultSpec, ProtocolSpec, SweepSpec};
use popele_lab::workloads::Family;
use popele_math::rng::SeedSeq;
use proptest::prelude::*;

/// Order-sensitive 64-bit fingerprint of a seed stream (splitmix64
/// absorption, the same mixer the streams themselves use).
fn fingerprint(stream: impl Iterator<Item = u64>) -> u64 {
    use popele_math::rng::splitmix64;
    stream.fold(0u64, |acc, s| splitmix64(acc ^ s))
}

/// The first 16 trial seeds of a master seed, as the Monte-Carlo
/// harness derives them.
fn trial_seeds(master: u64) -> impl Iterator<Item = u64> {
    let seq = SeedSeq::new(master);
    (0..16u64).map(move |t| seq.child(t))
}

#[test]
fn golden_trial_seed_streams() {
    // (master, first trial seed, fingerprint of trial seeds 0..16).
    // Computed from the shipped derivation; do not update without
    // accepting that every recorded artifact's seeds change.
    let golden: &[(u64, u64, u64)] = &[
        (0x0, 0x6e78_9e6a_a1b9_65f4, 0x4588_f42b_46b8_3032),
        (0x1, 0xbeeb_8da1_658e_ec67, 0x31a8_5a30_e964_230c),
        (0xdead_beef, 0xde58_6a31_41a1_0922, 0xf038_abcd_f8a9_2155),
        (
            0x5eed_cafe_f00d_0042,
            0xc78f_31ce_acab_75b9,
            0x929e_5b9b_5b75_51cb,
        ),
    ];
    for &(master, first, fp) in golden {
        assert_eq!(SeedSeq::new(master).child(0), first, "master {master:#x}");
        assert_eq!(fingerprint(trial_seeds(master)), fp, "master {master:#x}");
    }
}

#[test]
fn golden_fault_seed_streams() {
    let golden: &[(u64, u64)] = &[
        (0x0, 0xe08f_7c2a_7ef8_a196),
        (0x1, 0xdeeb_c802_b6f1_77f4),
        (0xdead_beef, 0xe292_4970_fb6e_3125),
        (0x5eed_cafe_f00d_0042, 0xb5d5_ec60_bfba_ec9b),
    ];
    for &(master, fp) in golden {
        assert_eq!(
            fingerprint(trial_seeds(master).map(fault_seed)),
            fp,
            "master {master:#x}"
        );
    }
}

#[test]
fn golden_arbitrary_init_seed_streams() {
    let golden: &[(u64, u64)] = &[
        (0x0, 0x13b5_79c4_9326_9b60),
        (0x1, 0xbe35_0a34_f601_5e30),
        (0xdead_beef, 0xf4f8_737d_6a89_2be0),
        (0x5eed_cafe_f00d_0042, 0xd839_23be_1fe2_18e6),
    ];
    for &(master, fp) in golden {
        assert_eq!(
            fingerprint(trial_seeds(master).map(arbitrary_seed)),
            fp,
            "master {master:#x}"
        );
    }
}

#[test]
fn golden_corner_protocol_cell_seed_streams() {
    // The sweep keys of the two states-vs-time corner protocols
    // (`space-opt` on its clique home, `ring-time-opt` on its cycle
    // home) address their cell seeds through the same FNV-1a key hash
    // as every other cell, so their recorded campaign artifacts are
    // pinned by the same mechanism: (key, cell seed under the default
    // master 0xC0FFEE, first trial seed, fingerprint of trial seeds
    // 0..16). Values computed once — from the shipped derivation and
    // cross-checked against an independent reimplementation — and
    // hardcoded; renaming a label or touching the key hash fails here
    // before it silently orphans a checkpoint.
    let spec = SweepSpec::default();
    let golden: &[(ProtocolSpec, Family, u32, u64, u64, u64)] = &[
        (
            ProtocolSpec::SpaceOpt,
            Family::Clique,
            64,
            0x126a_9e84_4633_8eb5,
            0x170d_9f1c_cf6d_bb95,
            0x4b0f_7bd0_32f7_8b7b,
        ),
        (
            ProtocolSpec::SpaceOpt,
            Family::Clique,
            40_000,
            0x0dbb_e4b0_16c1_4442,
            0xa1a6_849b_4314_38a8,
            0xc2d0_d02b_5e98_0fe8,
        ),
        (
            ProtocolSpec::RingTimeOpt,
            Family::Cycle,
            64,
            0xffb2_eda5_bf9e_e60f,
            0x1582_348b_f6f0_79aa,
            0xa39d_6be5_4d6c_c10f,
        ),
        (
            ProtocolSpec::RingTimeOpt,
            Family::Cycle,
            2_000,
            0x098d_eec5_7c88_5551,
            0x906c_85d7_5ca7_9936,
            0x5ed7_e7dd_0e2a_1eb2,
        ),
    ];
    for &(protocol, family, size, cell_seed, first, fp) in golden {
        let cell = CellSpec {
            protocol,
            family,
            size,
            fault: FaultSpec::None,
        };
        let key = cell.key();
        assert_eq!(spec.cell_seed(&cell), cell_seed, "{key}");
        let trials = SeedSeq::new(cell_seed);
        assert_eq!(trials.child(0), first, "{key}");
        assert_eq!(
            fingerprint((0..16u64).map(|t| trials.child(t))),
            fp,
            "{key}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `child(i)` is the random-access view of the `next_seed` stream —
    /// the law that makes sharded trials equal one big run.
    #[test]
    fn child_matches_sequential_stream(master in any::<u64>(), n in 1usize..32) {
        let mut seq = SeedSeq::new(master);
        let sequential: Vec<u64> = (0..n).map(|_| seq.next_seed()).collect();
        let random_access: Vec<u64> =
            (0..n as u64).map(|i| SeedSeq::new(master).child(i)).collect();
        prop_assert_eq!(sequential, random_access);
    }

    /// The three per-trial streams are pure functions of the trial seed
    /// and pairwise distinct: a trial never feeds its scheduler seed to
    /// its fault realization or its arbitrary-init sampler.
    #[test]
    fn derived_streams_are_stable_and_separated(trial_seed in any::<u64>()) {
        prop_assert_eq!(fault_seed(trial_seed), fault_seed(trial_seed));
        prop_assert_eq!(arbitrary_seed(trial_seed), arbitrary_seed(trial_seed));
        prop_assert_ne!(fault_seed(trial_seed), trial_seed);
        prop_assert_ne!(arbitrary_seed(trial_seed), trial_seed);
        prop_assert_ne!(fault_seed(trial_seed), arbitrary_seed(trial_seed));
    }

    /// Distinct masters give distinct trial-seed streams (fingerprint
    /// collision over 16 seeds would be a 2⁻⁶⁴ accident — any observed
    /// failure means the derivation lost master-seed sensitivity).
    #[test]
    fn masters_separate_streams(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(
            fingerprint(trial_seeds(a)),
            fingerprint(trial_seeds(b))
        );
    }
}
