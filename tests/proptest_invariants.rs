//! Property-based tests on the workspace's core invariants.

use popele::dynamics::influence::{record_schedule, InteractionPattern};
use popele::engine::{EdgeScheduler, Executor};
use popele::graph::{random, Graph, GraphBuilder};
use popele::protocols::token::{Token, TokenProtocol};
use popele::protocols::IdentifierProtocol;
use proptest::prelude::*;

/// Strategy: a connected graph on 2..=24 nodes built from a random tree
/// plus random extra edges.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (2u32..=24, any::<u64>(), 0usize..=40).prop_map(|(n, seed, extra)| {
        let mut rng = popele::math::rng::small_rng(seed);
        use rand::Rng;
        let mut b = GraphBuilder::new(n);
        // Random spanning tree: attach node v to a uniform earlier node.
        for v in 1..n {
            let parent = rng.random_range(0..v);
            b.add_edge(parent, v).unwrap();
        }
        let mut g = b.build().unwrap();
        // Random extra edges (ignore duplicates).
        for _ in 0..extra {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v && !g.has_edge(u, v) {
                g = g.with_edges(&[(u.min(v), u.max(v))]).unwrap();
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR structural invariants hold for arbitrary connected graphs.
    #[test]
    fn graph_structure_consistent(g in connected_graph()) {
        // Degree sum = 2m.
        let degree_sum: u64 = g.nodes().map(|v| u64::from(g.degree(v))).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges() as u64);
        // Adjacency is symmetric and sorted.
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &w in nbrs {
                prop_assert!(g.has_edge(w, v));
                prop_assert!(g.neighbors(w).contains(&v));
            }
        }
        prop_assert!(popele::graph::properties::is_connected(&g));
    }

    /// The scheduler only ever samples adjacent ordered pairs, and both
    /// orientations of every edge appear over time.
    #[test]
    fn scheduler_samples_valid_pairs(g in connected_graph(), seed in any::<u64>()) {
        let mut sched = EdgeScheduler::new(&g, seed);
        for _ in 0..500 {
            let (u, v) = sched.next_pair();
            prop_assert!(g.has_edge(u, v));
            prop_assert_ne!(u, v);
        }
    }

    /// Token-protocol conservation law along arbitrary executions:
    /// candidates = blacks + whites, blacks ≥ 1 (see crate::token docs).
    #[test]
    fn token_conservation(g in connected_graph(), seed in any::<u64>()) {
        let p = TokenProtocol::all_candidates();
        let mut exec = Executor::new(&g, &p, seed);
        for _ in 0..300 {
            exec.step();
            let blacks = exec.states().iter().filter(|s| s.token == Some(Token::Black)).count();
            let whites = exec.states().iter().filter(|s| s.token == Some(Token::White)).count();
            let candidates = exec.states().iter().filter(|s| s.candidate).count();
            prop_assert!(blacks >= 1);
            prop_assert_eq!(candidates, blacks + whites);
        }
    }

    /// Identifier monotonicity: ids never decrease, and finished ids stay
    /// within [2^k, 2^{k+1}).
    #[test]
    fn identifier_monotone(g in connected_graph(), seed in any::<u64>(), k in 1u32..=8) {
        let p = IdentifierProtocol::new(k);
        let mut exec = Executor::new(&g, &p, seed);
        let threshold = 1u64 << k;
        let mut prev: Vec<u64> = exec.states().iter().map(|s| s.id).collect();
        for _ in 0..300 {
            exec.step();
            for (v, s) in exec.states().iter().enumerate() {
                prop_assert!(s.id >= prev[v]);
                prop_assert!(s.id < 2 * threshold);
                prev[v] = s.id;
            }
        }
    }

    /// Interaction-pattern replay equals forward execution for every root
    /// (the pattern captures exactly the influencing interactions).
    #[test]
    fn pattern_replay_matches_execution(g in connected_graph(), seed in any::<u64>()) {
        let t = 60usize;
        let schedule = record_schedule(&g, t, seed);
        // "Sum of everything seen" protocol — sensitive to any missing or
        // reordered interaction.
        let transition = |a: &u64, b: &u64| (a.wrapping_mul(31).wrapping_add(*b), b.wrapping_mul(17).wrapping_add(*a));
        let mut forward: Vec<u64> = (0..g.num_nodes() as u64).map(|v| v + 1).collect();
        for &(u, v) in &schedule {
            let (nu, nv) = transition(&forward[u as usize], &forward[v as usize]);
            forward[u as usize] = nu;
            forward[v as usize] = nv;
        }
        for root in g.nodes() {
            let pattern = InteractionPattern::from_schedule(&schedule, root, t);
            let states = pattern.replay(|v| u64::from(v) + 1, transition);
            prop_assert_eq!(states[&u64::from(root)], forward[root as usize]);
        }
    }

    /// Lemma 45 unfolding: root state preserved, internal count reduced,
    /// node count at most doubled — for arbitrary schedules and roots.
    #[test]
    fn unfolding_invariants(g in connected_graph(), seed in any::<u64>()) {
        let t = 40usize;
        let schedule = record_schedule(&g, t, seed);
        let transition = |a: &u64, b: &u64| (a.wrapping_mul(7).wrapping_add(*b ^ 0x9E37), b.wrapping_add(a >> 3));
        let pattern = InteractionPattern::from_schedule(&schedule, 0, t);
        let before = pattern.replay(u64::from, transition)[&pattern.root()];
        if let Some(unfolded) = pattern.unfold_once() {
            prop_assert_eq!(unfolded.internal_interactions(), pattern.internal_interactions() - 1);
            prop_assert!(unfolded.num_nodes() <= 2 * pattern.num_nodes());
            let after = unfolded.replay(u64::from, transition)[&unfolded.root()];
            prop_assert_eq!(before, after);
        } else {
            prop_assert_eq!(pattern.internal_interactions(), 0);
        }
    }

    /// G(n, p) sampling: edge counts fall within a generous Chernoff
    /// envelope around p·C(n,2), and the graph type invariants hold.
    #[test]
    fn gnp_edge_counts(n in 8u32..=48, seed in any::<u64>()) {
        let p = 0.4;
        let g = random::erdos_renyi(n, p, seed);
        let pairs = f64::from(n) * f64::from(n - 1) / 2.0;
        let mean = pairs * p;
        let slack = 6.0 * mean.sqrt() + 4.0;
        prop_assert!((g.num_edges() as f64 - mean).abs() <= slack,
            "n={} edges={} mean={}", n, g.num_edges(), mean);
    }

    /// Executors are replayable: same graph + seed ⇒ identical traces.
    #[test]
    fn executor_determinism(g in connected_graph(), seed in any::<u64>()) {
        let p = TokenProtocol::all_candidates();
        let mut a = Executor::new(&g, &p, seed);
        let mut b = Executor::new(&g, &p, seed);
        for _ in 0..120 {
            prop_assert_eq!(a.step(), b.step());
        }
        prop_assert_eq!(a.states(), b.states());
    }
}

mod space_opt_props {
    use super::*;
    use popele::protocols::spaceopt::{SpaceOptState, SpaceOptimalProtocol};

    /// An arbitrary in-range state for a `(max_level, phase_len)`
    /// parameterization — raw draws folded into range so shrinking
    /// stays meaningful.
    fn state(
        raw_level: u8,
        candidate: bool,
        raw_clock: u8,
        p: &SpaceOptimalProtocol,
    ) -> SpaceOptState {
        SpaceOptState {
            level: raw_level % (p.max_level() + 1),
            candidate,
            clock: raw_clock % p.phase_len(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The junta-race safety invariants the oracle-exactness
        /// argument rests on (see `crates/core/src/spaceopt.rs`), under
        /// *arbitrary* interaction schedules on arbitrary connected
        /// graphs — not just the clique home model: the candidate set
        /// only shrinks and never empties, the global maximum level is
        /// always held by a candidate, and every agent stays inside the
        /// declared level/clock ranges (the census bound).
        #[test]
        fn junta_race_safety(g in connected_graph(), seed in any::<u64>(),
                             max_level in 1u8..4, phase_len in 2u8..12) {
            let p = SpaceOptimalProtocol::new(max_level, phase_len);
            let mut exec = Executor::new(&g, &p, seed);
            let mut last = g.num_nodes() as usize;
            for _ in 0..400 {
                exec.step();
                let states = exec.states();
                let count = states.iter().filter(|s| s.candidate).count();
                prop_assert!(count >= 1, "the race lost every candidate");
                prop_assert!(count <= last, "candidate count increased");
                last = count;
                let max = states.iter().map(|s| s.level).max().unwrap();
                prop_assert!(
                    states.iter().any(|s| s.candidate && s.level == max),
                    "no candidate at the global max level {}", max
                );
                for s in states {
                    prop_assert!(s.level <= max_level);
                    prop_assert!(s.clock < phase_len);
                }
            }
        }

        /// The same monotonicity laws at the single-interaction level,
        /// over *arbitrary* (possibly unreachable) state pairs: one
        /// meeting never mints a candidate, never lowers the pairwise
        /// maximum level, and lands both parties back in range.
        #[test]
        fn pairwise_interaction_monotone(
            max_level in 1u8..6, phase_len in 2u8..16,
            al in any::<u8>(), ac in any::<bool>(), ak in any::<u8>(),
            bl in any::<u8>(), bc in any::<bool>(), bk in any::<u8>(),
        ) {
            let p = SpaceOptimalProtocol::new(max_level, phase_len);
            let a = state(al, ac, ak, &p);
            let b = state(bl, bc, bk, &p);
            let (na, nb) = p.interact(&a, &b);
            let cands = |x: &SpaceOptState, y: &SpaceOptState| {
                usize::from(x.candidate) + usize::from(y.candidate)
            };
            prop_assert!(cands(&na, &nb) <= cands(&a, &b), "a meeting minted a candidate");
            prop_assert!(na.level.max(nb.level) >= a.level.max(b.level), "max level dropped");
            for s in [&na, &nb] {
                prop_assert!(s.level <= max_level);
                prop_assert!(s.clock < phase_len);
            }
            // Followers are passive: a follower pair only synchronizes.
            if !a.candidate && !b.candidate {
                prop_assert_eq!(cands(&na, &nb), 0);
                prop_assert_eq!(na.clock, nb.clock);
            }
        }

        /// The phase-clock join algebra: `clock_max` is a symmetric,
        /// idempotent selection of one of its arguments, and the gating
        /// distance is a symmetric cyclic metric bounded by `⌊m/2⌋` —
        /// the properties that make the clock-gated duel rule a well
        /// defined (initiator/responder-symmetric) transition.
        #[test]
        fn clock_join_algebra(phase_len in 2u8..32, xr in any::<u8>(), yr in any::<u8>()) {
            let p = SpaceOptimalProtocol::new(1, phase_len);
            let (x, y) = (xr % phase_len, yr % phase_len);
            let j = p.clock_max(x, y);
            prop_assert!(j == x || j == y, "join invented a reading");
            prop_assert_eq!(j, p.clock_max(y, x));
            prop_assert_eq!(p.clock_max(x, x), x);
            prop_assert_eq!(p.clock_dist(x, y), p.clock_dist(y, x));
            prop_assert!(p.clock_dist(x, y) <= phase_len / 2);
            prop_assert_eq!(p.clock_dist(x, y) == 0, x == y);
            // The join never moves a clock backwards past the other:
            // the loser reaches the winner in at most ⌊m/2⌋ forward
            // ticks, which is exactly the dist bound above.
            prop_assert!(p.clock_dist(j, x).max(p.clock_dist(j, y)) <= phase_len / 2);
        }
    }
}

mod fast_protocol_props {
    use super::*;
    use popele::protocols::fast::{FastProtocol, Status};
    use popele::protocols::params::FastParams;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Fast-protocol safety invariants along arbitrary executions:
        /// levels never exceed the cap, statuses never go follower →
        /// leader, at least one node outputs leader, and a node that
        /// entered the backup never leaves it.
        #[test]
        fn fast_protocol_safety(g in connected_graph(), seed in any::<u64>(),
                                h in 1u8..4, big_l in 1u32..4, alpha in 2u32..4) {
            let p = FastProtocol::new(FastParams::new(h, big_l, alpha));
            let cap = p.params().max_level();
            let mut exec = Executor::new(&g, &p, seed);
            let mut was_leader: Vec<bool> = vec![true; g.num_nodes() as usize];
            let mut in_backup: Vec<bool> = vec![false; g.num_nodes() as usize];
            for _ in 0..400 {
                exec.step();
                let mut any_leader = false;
                for (v, s) in exec.states().iter().enumerate() {
                    prop_assert!(s.level <= cap, "level above cap at node {}", v);
                    prop_assert!(u32::from(s.streak) < u32::from(h), "streak not reset");
                    let leads = match s.backup {
                        Some(inner) => inner.candidate,
                        None => s.status == Status::Leader,
                    };
                    if leads {
                        prop_assert!(was_leader[v], "node {} regained leadership", v);
                        any_leader = true;
                    }
                    was_leader[v] = leads;
                    if in_backup[v] {
                        prop_assert!(s.backup.is_some(), "node {} left the backup", v);
                    }
                    in_backup[v] = s.backup.is_some();
                    if s.backup.is_some() {
                        prop_assert_eq!(s.level, cap, "backup implies cap level");
                    }
                }
                prop_assert!(any_leader, "no leader output anywhere");
            }
        }

        /// Majority conservation: #StrongA − #StrongB invariant along
        /// arbitrary executions on arbitrary connected graphs.
        #[test]
        fn majority_strong_difference_invariant(g in connected_graph(), seed in any::<u64>()) {
            use popele::protocols::majority::{MajorityProtocol, Opinion};
            let n = g.num_nodes();
            prop_assume!(n >= 2);
            let a = (n / 3).max(1);
            prop_assume!(2 * a != n);
            let p = MajorityProtocol::new(a, n);
            let mut exec = Executor::new(&g, &p, seed);
            let diff = |states: &[Opinion]| -> i64 {
                let sa = states.iter().filter(|s| **s == Opinion::StrongA).count() as i64;
                let sb = states.iter().filter(|s| **s == Opinion::StrongB).count() as i64;
                sa - sb
            };
            let initial = diff(exec.states());
            for _ in 0..300 {
                exec.step();
                prop_assert_eq!(diff(exec.states()), initial);
            }
        }
    }
}
