//! Cross-crate validation of every stability oracle against the literal
//! reachability definition of stability (exhaustive configuration-space
//! search on tiny instances).
//!
//! This is the safety net for the engine's O(1)-per-step stabilization
//! detection: if any oracle ever disagrees with the definition on these
//! instances, the corresponding measurement in the experiment harness
//! would be wrong.

use popele::engine::exhaustive::{
    check_stable_and_correct, validate_oracle_on_execution, Verdict, DEFAULT_CONFIG_LIMIT,
};
use popele::engine::Executor;
use popele::graph::families;
use popele::protocols::params::FastParams;
use popele::protocols::{FastProtocol, IdentifierProtocol, StarProtocol, TokenProtocol};

#[test]
fn token_oracle_exact_on_tiny_graphs() {
    let p = TokenProtocol::all_candidates();
    for (g, seed) in [
        (families::path(2), 1u64),
        (families::path(3), 2),
        (families::cycle(3), 3),
        (families::star(4), 4),
        (families::cycle(4), 5),
    ] {
        let steps = validate_oracle_on_execution(&p, &g, seed, 500, DEFAULT_CONFIG_LIMIT);
        assert!(steps < 500, "token should stabilize quickly on {g}");
    }
}

#[test]
fn token_oracle_exact_with_candidate_subsets() {
    let g = families::cycle(4);
    for candidates in [vec![0u32], vec![0, 2], vec![0, 1, 2, 3]] {
        let p = TokenProtocol::with_candidates(candidates.clone());
        let steps = validate_oracle_on_execution(&p, &g, 7, 500, DEFAULT_CONFIG_LIMIT);
        assert!(steps < 500, "candidates {candidates:?}");
    }
}

#[test]
fn identifier_oracle_exact_on_tiny_graphs() {
    // k = 1 keeps the reachable configuration space searchable.
    let p = IdentifierProtocol::new(1);
    for (g, seed) in [
        (families::path(2), 11u64),
        (families::path(3), 12),
        (families::cycle(3), 13),
    ] {
        let steps = validate_oracle_on_execution(&p, &g, seed, 400, DEFAULT_CONFIG_LIMIT);
        assert!(steps < 400, "identifier should stabilize quickly on {g}");
    }
}

#[test]
fn star_oracle_exact_on_stars() {
    for n in [2u32, 3, 5] {
        let steps = validate_oracle_on_execution(
            &StarProtocol::new(),
            &families::star(n),
            21,
            50,
            DEFAULT_CONFIG_LIMIT,
        );
        assert_eq!(steps, 1, "star protocol is a one-interaction election");
    }
}

#[test]
fn fast_oracle_exact_along_executions() {
    // Snapshot comparison at every step for the first 60 steps on a
    // single edge and a triangle (the config spaces stay enumerable).
    let p = FastProtocol::new(FastParams::new(1, 1, 2));
    for (g, seed, horizon) in [
        (families::clique(2), 31u64, 60u64),
        (families::cycle(3), 32, 40),
    ] {
        let mut exec = Executor::new(&g, &p, seed);
        for step in 0..horizon {
            let exhaustive = check_stable_and_correct(&p, &g, exec.states(), DEFAULT_CONFIG_LIMIT);
            match exhaustive {
                Verdict::Stable => {
                    assert!(
                        exec.is_stable(),
                        "step {step} on {g}: oracle too conservative"
                    )
                }
                Verdict::Unstable => {
                    assert!(!exec.is_stable(), "step {step} on {g}: oracle too eager")
                }
                Verdict::Inconclusive => panic!("search exploded on {g}"),
            }
            exec.step();
        }
    }
}

#[test]
fn initial_configurations_are_unstable() {
    // Leader election from identical states can never start stable (for
    // n ≥ 2 there are either 0 or ≥ 2 leaders initially).
    let g = families::path(3);
    let token = TokenProtocol::all_candidates();
    assert_eq!(
        check_stable_and_correct(
            &token,
            &g,
            &[
                token.initial_state(0),
                token.initial_state(1),
                token.initial_state(2)
            ],
            DEFAULT_CONFIG_LIMIT
        ),
        Verdict::Unstable
    );
    let id = IdentifierProtocol::new(1);
    assert_eq!(
        check_stable_and_correct(
            &id,
            &g,
            &[
                id.initial_state(0),
                id.initial_state(1),
                id.initial_state(2)
            ],
            DEFAULT_CONFIG_LIMIT
        ),
        Verdict::Unstable
    );
}

use popele::engine::Protocol;
