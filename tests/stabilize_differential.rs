//! The self-stabilization plumbing's contract across all three engines:
//! identical arbitrary start configurations must produce identical
//! traces, elections, holding times and recovery metrics on the
//! generic, ahead-of-time-compiled and lazily-compiling engines —
//! across every graph family of the acceptance grid, with and without
//! corrupt-burst fault plans, and independently of thread count and
//! sharding.
//!
//! This is also the acceptance test of PR 4's lazy design under a new
//! kind of load: arbitrary start states are *not* reachable from the
//! clean initial configuration, so the lazy engine must intern them on
//! first sight (`set_configuration`), while the ahead-of-time engine
//! needs its closure seeded with the sampler's support
//! (`CompiledProtocol::compile_with_seeds`).

mod harness;

use harness::{assert_trace_identical_from, small_families};
use popele::engine::monte_carlo::{Engine, TrialOptions};
use popele::engine::stabilize::{
    arbitrary_config, arbitrary_seed, run_to_hold, run_trials_stabilize, run_trials_stabilize_auto,
    run_trials_stabilize_dense, run_trials_stabilize_lazy, select_stabilize_engine, ArbitraryInit,
};
use popele::engine::{CompiledProtocol, Executor, FaultKind, FaultPlan, LazyDenseExecutor};
use popele::graph::families;
use popele::protocols::{LooseProtocol, RingLooseProtocol};

#[test]
fn loose_trace_identical_from_arbitrary_starts_on_all_families() {
    for g in small_families(36) {
        let p = LooseProtocol::new(24);
        assert_trace_identical_from(&p, &g, 0x5AB ^ u64::from(g.num_edges() as u32), 1500, 8_000);
    }
}

#[test]
fn ring_variant_trace_identical_from_arbitrary_starts() {
    let g = families::cycle(48);
    let p = RingLooseProtocol::for_ring(48);
    for seed in [3u64, 17, 40] {
        assert_trace_identical_from(&p, &g, seed, 1500, 8_000);
    }
}

#[test]
fn elect_and_hold_agree_across_engines() {
    // τ = 2 keeps holds short, so the violation step itself (not just
    // the election) is compared across engines within the budget.
    let p = LooseProtocol::new(2);
    for g in [families::clique(12), families::star(12)] {
        let config = arbitrary_config(&p, 12, arbitrary_seed(5));
        let compiled =
            CompiledProtocol::compile_with_seeds(&p, 12, 64, &p.arbitrary_support()).unwrap();
        let mut generic = Executor::new(&g, &p, 5);
        let mut dense = popele::engine::DenseExecutor::new(&g, &compiled, 5);
        let mut lazy = LazyDenseExecutor::new(&g, &p, 5);
        generic.set_configuration(&config);
        dense.set_configuration(&config);
        lazy.set_configuration(&config);
        let a = run_to_hold(&mut generic, 1 << 20);
        let b = run_to_hold(&mut dense, 1 << 20);
        let c = run_to_hold(&mut lazy, 1 << 20);
        assert_eq!(a.result, b.result, "{g}");
        assert_eq!(a.result, c.result, "{g}");
        assert_eq!(a.holding, b.holding, "{g}");
        assert_eq!(a.holding, c.holding, "{g}");
        assert!(a.holding.hold_steps.is_some(), "{g}: τ=2 must be violated");
    }
}

#[test]
fn stabilize_trials_agree_across_engines_under_corrupt_bursts() {
    // The acceptance scenario: arbitrary starts *and* corrupt bursts,
    // all engines, per-trial results compared exactly.
    let plan = FaultPlan::periodic(FaultKind::CorruptNodes { count: 6 }, 400, 400, 3);
    let opts = TrialOptions {
        trials: 5,
        max_steps: 1 << 19,
        census: true,
        threads: 2,
        ..TrialOptions::default()
    };
    for g in [families::clique(18), families::cycle(18)] {
        let p = LooseProtocol::new(16);
        let compiled =
            CompiledProtocol::compile_with_seeds(&p, 18, 256, &p.arbitrary_support()).unwrap();
        let generic = run_trials_stabilize(&g, &p, 77, opts, &plan);
        let dense = run_trials_stabilize_dense(&g, &compiled, 77, opts, &plan);
        let lazy = run_trials_stabilize_lazy(&g, &p, 77, opts, &plan);
        let auto = run_trials_stabilize_auto(&g, &p, 77, opts, &plan);
        assert_eq!(generic, dense, "{g}");
        assert_eq!(generic, lazy, "{g}");
        assert_eq!(generic, auto, "{g}");
        for r in &generic {
            let recovery = r.recovery.expect("burst plans attach recovery");
            // Bounded re-election is the family's headline property:
            // every trial re-elects after the last burst.
            assert!(recovery.reconvergence_steps.is_some(), "{g} trial lost");
            assert!(r.holding.is_some());
        }
    }
}

#[test]
fn stabilize_trials_are_thread_and_shard_invariant() {
    let g = families::torus(6, 6);
    let p = LooseProtocol::new(12);
    let opts = |first_trial, trials, threads| TrialOptions {
        trials,
        first_trial,
        max_steps: 1 << 19,
        census: false,
        lanes: false,
        threads,
    };
    let whole = run_trials_stabilize_auto(&g, &p, 9, opts(0, 9, 1), &FaultPlan::empty());
    let threaded = run_trials_stabilize_auto(&g, &p, 9, opts(0, 9, 4), &FaultPlan::empty());
    assert_eq!(whole, threaded);
    let mut sharded = Vec::new();
    for (start, len) in [(0usize, 4usize), (4, 3), (7, 2)] {
        sharded.extend(run_trials_stabilize_auto(
            &g,
            &p,
            9,
            opts(start, len, 2),
            &FaultPlan::empty(),
        ));
    }
    assert_eq!(whole, sharded);
    assert_eq!(whole[5].trial, 5);
}

#[test]
fn large_budgets_ride_the_lazy_engine_trace_identically() {
    // τ = 2000 → 4002 states: past the AOT cap, but the state-space
    // bound is declared, so selection picks the lazy engine — which
    // must intern the arbitrary start states on first sight.
    let p = LooseProtocol::new(2000);
    assert!(
        CompiledProtocol::compile_default(&p, 64).is_err(),
        "large budgets must overflow the AOT cap"
    );
    assert_eq!(select_stabilize_engine(&p, 64), Engine::LazyDense);
    let g = families::cycle(64);
    let config = arbitrary_config(&p, 64, arbitrary_seed(21));
    let mut generic = Executor::new(&g, &p, 21);
    let mut lazy = LazyDenseExecutor::new(&g, &p, 21);
    generic.set_configuration(&config);
    lazy.set_configuration(&config);
    for _ in 0..2000 {
        assert_eq!(generic.step(), lazy.step());
    }
    generic.run_steps(10_000);
    lazy.run_steps(10_000);
    assert_eq!(generic.outcome(), lazy.outcome());
    // The interner really did see states no clean run produces.
    assert!(lazy.table().num_states() > 64);

    let opts = TrialOptions {
        trials: 3,
        max_steps: 1 << 18,
        threads: 1,
        ..TrialOptions::default()
    };
    let auto = run_trials_stabilize_auto(&g, &p, 4, opts, &FaultPlan::empty());
    assert!(auto.iter().all(|r| r.engine == Engine::LazyDense));
    assert_eq!(
        auto,
        run_trials_stabilize(&g, &p, 4, opts, &FaultPlan::empty())
    );
}

#[test]
fn ring_variant_at_csr_scale_matches_generic() {
    // n > 2¹⁶ pushes the dense engines onto the CSR edge decoder; the
    // ring bound 2n = 140 000 states is far past the AOT cap, so this
    // exercises lazy interning of a six-figure support at CSR sizes.
    let n = 70_000;
    let g = families::cycle(n);
    let p = RingLooseProtocol::for_ring(n);
    assert_eq!(select_stabilize_engine(&p, n), Engine::LazyDense);
    let config = arbitrary_config(&p, n, arbitrary_seed(8));
    let mut generic = Executor::new(&g, &p, 8);
    let mut lazy = LazyDenseExecutor::new(&g, &p, 8);
    generic.set_configuration(&config);
    lazy.set_configuration(&config);
    for _ in 0..1500 {
        assert_eq!(generic.step(), lazy.step());
    }
    generic.run_steps(10_000);
    lazy.run_steps(10_000);
    for v in (0..n).step_by(997) {
        assert_eq!(generic.states()[v as usize], *lazy.state_of(v));
    }
    assert_eq!(generic.outcome(), lazy.outcome());
}

#[test]
fn holding_metrics_are_internally_consistent() {
    let g = families::clique(16);
    let p = LooseProtocol::new(8);
    let results = run_trials_stabilize_auto(
        &g,
        &p,
        13,
        TrialOptions {
            trials: 8,
            max_steps: 1 << 19,
            threads: 2,
            ..TrialOptions::default()
        },
        &FaultPlan::empty(),
    );
    for r in &results {
        let h = r.holding.expect("stabilize trials attach holding");
        assert_eq!(h.elect_step, r.stabilization_step);
        match (h.elect_step, h.hold_steps, h.held_to_budget) {
            // Elected and violated: both phases fit the budget.
            (Some(e), Some(hold), false) => assert!(e + hold <= 1 << 19),
            // Elected, still holding at the budget (censored).
            (Some(_), None, true) => {}
            // Never elected.
            (None, None, false) => assert!(r.stabilization_step.is_none()),
            other => panic!("inconsistent holding metrics: {other:?}"),
        }
    }
}
