//! The lane-parallel dense engine's contract with the scalar engines.
//!
//! [`LaneDenseExecutor`] steps 8–16 trials of one compiled cell in
//! lockstep; its contract is per-trial **trace identity** with the
//! scalar [`DenseExecutor`] (and therefore, transitively, with the
//! generic [`Executor`]): for every trial seed the lane engine must
//! report the same stabilization step and elected leader, and its
//! lane rows must pass through the same configurations at the same
//! step counts. This suite pins that contract:
//!
//! 1. **Outcome identity across families** — `run_trials_lanes` equals
//!    `run_trials_dense` *and* the generic `run_trials`, per trial, on
//!    clique / cycle / star / torus / random-regular workloads,
//!    including trial counts that leave a partial final pack.
//! 2. **Trajectory identity** — while lanes are in flight, each lane
//!    row equals the scalar configuration at the same step count
//!    (fused-clique and packed-decoder paths both covered).
//! 3. **Ragged retirement** — a lane that stabilizes early retires and
//!    is refilled without disturbing its neighbours' streams.
//! 4. **Timeouts** — budget exhaustion produces the scalar timeout
//!    result (`stabilization_step: None`, no leader) per trial.
//! 5. **Non-linear oracles** — the fast protocol's oracle (not a
//!    unique-leader count) takes the typed per-lane oracle path and
//!    still matches scalar.
//! 6. **Auto-selection invariance** — `run_trials_auto` with the lane
//!    tier enabled returns results independent of thread count and
//!    sharding, equal to the lanes-off run, with the provenance tag
//!    recording the lane engine exactly when the tier is eligible.

use popele::engine::monte_carlo::{
    run_trials, run_trials_auto, run_trials_dense, run_trials_lanes, Engine, TrialOptions,
    LANE_MIN_TRIALS,
};
use popele::engine::{CompiledProtocol, DenseExecutor, LaneDenseExecutor};
use popele::graph::{families, random::random_regular_connected, Graph};
use popele::protocols::params::FastParams;
use popele::protocols::{FastProtocol, StarProtocol, TokenProtocol};

fn opts(trials: usize, first_trial: usize, max_steps: u64, threads: usize) -> TrialOptions {
    TrialOptions {
        trials,
        first_trial,
        max_steps,
        census: false,
        lanes: false,
        threads,
    }
}

/// Asserts lane results equal both scalar-dense and generic results for
/// the same master seed, per trial (`TrialResult` equality compares
/// trial index, stabilization step and leader — everything except the
/// engine-provenance tag).
fn assert_lanes_match(g: &Graph, seed: u64, trials: usize, max_steps: u64) {
    let p = TokenProtocol::all_candidates();
    let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
    let o = opts(trials, 0, max_steps, 1);
    let lanes = run_trials_lanes(g, &compiled, seed, o);
    assert_eq!(lanes.len(), trials);
    assert!(lanes.iter().all(|r| r.engine == Engine::Lanes));
    assert_eq!(lanes, run_trials_dense(g, &compiled, seed, o), "{g}");
    assert_eq!(lanes, run_trials(g, &p, seed, o), "{g}");
}

#[test]
fn lane_outcomes_match_scalar_on_five_families() {
    // 11 trials through (up to) 11 lanes clamped to 16 — but more to
    // the point, 11 is not a multiple of any lane count the harness
    // picks, so the run always ends on a partial pack.
    for (g, seed) in [
        (families::clique(24), 0xA1),
        (families::cycle(24), 0xA2),
        (families::star(24), 0xA3),
        (families::torus(5, 5), 0xA4),
        (random_regular_connected(24, 3, 9, 64), 0xA5),
    ] {
        assert_lanes_match(&g, seed, 11, 1 << 24);
    }
}

#[test]
fn partial_pack_and_above_cap_trial_counts() {
    // trials < 2·lanes exercises the final partial pack; trials far
    // above LANE_MAX_LANES exercises sustained retire-and-refill.
    let g = families::clique(16);
    for trials in [LANE_MIN_TRIALS, 9, 13, 40] {
        assert_lanes_match(&g, 0xB0 + trials as u64, trials, 1 << 24);
    }
}

#[test]
fn timeouts_are_trace_identical_per_trial() {
    // A budget deep enough for some trials and not others: each side
    // must time out on exactly the same trials. The star protocol on a
    // star graph stabilizes quickly only when the hub draws well, so
    // small budgets split the trial set.
    let g = families::star(24);
    let p = StarProtocol::new();
    let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
    for max_steps in [1, 8, 64, 512] {
        let o = opts(12, 0, max_steps, 1);
        let lanes = run_trials_lanes(&g, &compiled, 0xC0, o);
        assert_eq!(
            lanes,
            run_trials_dense(&g, &compiled, 0xC0, o),
            "{max_steps}"
        );
    }
}

#[test]
fn fast_protocol_nonlinear_oracle_matches_scalar() {
    // The fast oracle is not a unique-leader count
    // (`stable_iff_unique_leader` is false), so these trials take the
    // per-lane typed-oracle path instead of the leader-delta counters.
    let p = FastProtocol::new(FastParams::new(1, 1, 2));
    for (g, seed) in [(families::clique(24), 0xD1), (families::cycle(24), 0xD2)] {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        let o = opts(10, 0, 1 << 24, 1);
        let lanes = run_trials_lanes(&g, &compiled, seed, o);
        assert!(lanes.iter().all(|r| r.engine == Engine::Lanes));
        assert_eq!(lanes, run_trials_dense(&g, &compiled, seed, o), "{g}");
        assert_eq!(lanes, run_trials(&g, &p, seed, o), "{g}");
    }
}

#[test]
fn lane_rows_follow_scalar_trajectories_blockwise() {
    // Drive a pack manually and, after every block, fast-forward a
    // scalar executor to each still-active lane's step count: the
    // configurations and leader counts must coincide. Torus → packed
    // decoder; clique → fused branchless path.
    let p = TokenProtocol::all_candidates();
    for g in [families::torus(4, 4), families::clique(16)] {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        let mut lanes = LaneDenseExecutor::new(&g, &compiled, 4);
        let seeds = [21u64, 22, 23, 24];
        let mut scalars: Vec<_> = seeds
            .iter()
            .map(|&s| DenseExecutor::new(&g, &compiled, s))
            .collect();
        for (t, &s) in seeds.iter().enumerate() {
            lanes.load(t, s);
        }
        for _ in 0..6 {
            lanes.run_block(u64::MAX);
            for slot in 0..lanes.num_lanes() {
                let Some(trial) = lanes.lane_trial(slot) else {
                    continue;
                };
                let scalar = &mut scalars[trial];
                scalar.run_steps(lanes.lane_steps(slot) - scalar.steps());
                assert_eq!(lanes.lane_state_ids(slot), scalar.state_ids(), "{g}");
                assert_eq!(lanes.lane_leader_count(slot), scalar.leader_count(), "{g}");
            }
        }
    }
}

#[test]
fn ragged_retirement_refills_without_disturbing_neighbours() {
    // Star-graph token election has heavy-tailed per-trial lengths, so
    // a 4-lane pack over 14 trials is constantly retiring and
    // refilling; every outcome must still match a fresh scalar run.
    let g = families::star(20);
    let p = TokenProtocol::all_candidates();
    let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
    let max_steps = 1u64 << 24;
    let mut lanes = LaneDenseExecutor::new(&g, &compiled, 4);
    let mut next = 0usize;
    let total = 14;
    let mut outcomes = Vec::new();
    loop {
        while lanes.has_free_lane() && next < total {
            lanes.load(next, 0xE000 + next as u64);
            next += 1;
        }
        while let Some(out) = lanes.take_finished() {
            outcomes.push(out);
        }
        if lanes.num_active() == 0 && next == total {
            break;
        }
        lanes.run_block(max_steps);
    }
    assert_eq!(outcomes.len(), total);
    for out in outcomes {
        let mut scalar = DenseExecutor::new(&g, &compiled, 0xE000 + out.trial as u64);
        match scalar.run_until_stable(max_steps) {
            Ok(o) => {
                assert_eq!(out.stabilization_step, Some(o.stabilization_step));
                assert_eq!(out.leader, o.leader);
            }
            Err(_) => {
                assert_eq!(out.stabilization_step, None);
                assert_eq!(out.leader, None);
            }
        }
    }
}

#[test]
fn auto_selection_with_lanes_is_thread_and_shard_invariant() {
    let g = families::clique(32);
    let p = TokenProtocol::all_candidates();
    let with_lanes = |trials, first_trial, threads| TrialOptions {
        lanes: true,
        ..opts(trials, first_trial, 1 << 24, threads)
    };

    // Baseline: the lanes-off auto run (scalar dense tier).
    let baseline = run_trials_auto(&g, &p, 0xF00D, opts(12, 0, 1 << 24, 1));
    assert!(baseline.iter().all(|r| r.engine == Engine::Dense));

    // Lane tier on, one thread and several: identical results, lane
    // provenance.
    let lanes1 = run_trials_auto(&g, &p, 0xF00D, with_lanes(12, 0, 1));
    let lanes4 = run_trials_auto(&g, &p, 0xF00D, with_lanes(12, 0, 4));
    assert!(lanes1.iter().all(|r| r.engine == Engine::Lanes));
    assert_eq!(baseline, lanes1);
    assert_eq!(lanes1, lanes4);

    // Sharded the way the sweep runner shards: shards below
    // LANE_MIN_TRIALS legitimately fall back to the scalar tier — the
    // results must be unchanged either way, only the provenance moves.
    let mut sharded = Vec::new();
    for (start, len) in [(0, 8), (8, 4)] {
        sharded.extend(run_trials_auto(&g, &p, 0xF00D, with_lanes(len, start, 2)));
    }
    assert_eq!(baseline, sharded);
    assert!(sharded[..8].iter().all(|r| r.engine == Engine::Lanes));
    assert!(sharded[8..].iter().all(|r| r.engine == Engine::Dense));

    // Below the eligibility floor the flag is a no-op.
    let small = run_trials_auto(&g, &p, 0xF00D, with_lanes(LANE_MIN_TRIALS - 1, 0, 1));
    assert!(small.iter().all(|r| r.engine == Engine::Dense));
    assert_eq!(baseline[..LANE_MIN_TRIALS - 1], small[..]);
}
