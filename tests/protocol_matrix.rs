//! The protocol × family × engine-tier acceptance matrix.
//!
//! Every protocol family the workspace ships — the paper's clean-start
//! protocols, the loosely-stabilizing timeout family, and the two
//! states-vs-time corner protocols (space-optimal junta race,
//! time-optimal ring circulation) — is pushed through the shared
//! cross-tier differential harness (`tests/harness/mod.rs`) on the
//! clique/cycle/torus acceptance trio:
//!
//! * **Trace identity** generic ↔ lazy ↔ AOT-dense from clean starts
//!   (the AOT leg demanded wherever the protocol compiles under the
//!   default cap), and from shared *arbitrary* starts for every
//!   `ArbitraryInit` family.
//! * **Distribution agreement** with the count tier for the
//!   count-eligible newcomer (space-opt), mirroring the established
//!   token/fast/majority contracts in `tests/count_distribution.rs`.
//! * **Exhaustive fast-path agreement**: the compiled variants of the
//!   reachability validators must return verdict-for-verdict what the
//!   typed variants return on the space-optimal protocol at n ≤ 8 —
//!   the compiled twin of the trait-side exhaustive suite in
//!   `crates/core/src/spaceopt.rs`.
//!
//! Per-engine deep dives (fault plans, thread/shard invariance, CSR
//! scale, probe budgets) stay in the dedicated suites; this file is the
//! breadth axis those suites don't sweep.

mod harness;

use harness::{
    assert_distributions_match, assert_table_agrees, assert_trace_identical,
    assert_trace_identical_from, matrix_families,
};
use popele::engine::exhaustive::{
    check_stable_and_correct, check_stable_and_correct_compiled, validate_oracle_on_execution,
    validate_oracle_on_execution_compiled, DEFAULT_CONFIG_LIMIT,
};
use popele::engine::stabilize::ArbitraryInit;
use popele::engine::{CompiledProtocol, Protocol};
use popele::graph::families;
use popele::protocols::params::{identifier_bits, FastParams};
use popele::protocols::{
    FastProtocol, IdentifierProtocol, LooseProtocol, MajorityProtocol, RingLooseProtocol,
    SpaceOptimalProtocol, StarProtocol, TimeOptimalRingProtocol, TokenProtocol,
};

/// Matrix size: 36 nodes keeps the torus square (6 × 6) and every
/// compiled table small while still exercising all three edge decoders.
const N: u32 = 36;

#[test]
fn space_opt_trace_identity_across_all_three_tiers() {
    let p = SpaceOptimalProtocol::practical(N);
    for g in matrix_families(N) {
        let seed = 0x50AC ^ u64::from(g.num_edges() as u32);
        let dense = assert_trace_identical(&p, &g, seed, 2000, 10_000);
        assert!(
            dense,
            "{g}: space-opt must AOT-compile under the default cap"
        );
    }
}

#[test]
fn ring_time_opt_trace_identity_across_all_three_tiers() {
    let p = TimeOptimalRingProtocol::for_ring(N);
    for g in matrix_families(N) {
        let seed = 0x217 ^ u64::from(g.num_edges() as u32);
        let dense = assert_trace_identical(&p, &g, seed, 2000, 10_000);
        assert!(
            dense,
            "{g}: for_ring({N}) timers must AOT-compile under the default cap"
        );
    }
}

#[test]
fn ring_time_opt_trace_identity_from_arbitrary_starts() {
    // The protocol's actual operating mode: arbitrary start
    // configurations (unreachable from the clean start) interned on
    // first sight by the lazy engine and seeded into the AOT closure.
    let p = TimeOptimalRingProtocol::for_ring(N);
    for g in matrix_families(N) {
        for seed in [3u64, 29] {
            assert_trace_identical_from(&p, &g, seed, 1500, 8_000);
        }
    }
}

#[test]
fn the_established_registry_rides_the_same_matrix() {
    // The seven pre-existing protocols through the identical harness
    // call, replacing their per-suite copy-paste differentials: the
    // AOT leg is demanded exactly where the state space fits the cap.
    for g in matrix_families(N) {
        let seed = 0xA11 ^ u64::from(g.num_edges() as u32);
        for (label, ran_dense) in [
            (
                "token",
                assert_trace_identical(&TokenProtocol::all_candidates(), &g, seed, 1500, 8_000),
            ),
            (
                "star",
                assert_trace_identical(&StarProtocol::new(), &g, seed, 1500, 8_000),
            ),
            (
                "majority",
                assert_trace_identical(&MajorityProtocol::new(22, N), &g, seed, 1500, 8_000),
            ),
            (
                "identifier-small-k",
                assert_trace_identical(&IdentifierProtocol::new(2), &g, seed, 1500, 8_000),
            ),
            (
                "fast",
                assert_trace_identical(
                    &FastProtocol::new(FastParams::new(1, 1, 2)),
                    &g,
                    seed,
                    1500,
                    8_000,
                ),
            ),
        ] {
            assert!(ran_dense, "{label} must AOT-compile on {g}");
        }
        // The stabilizing families run the arbitrary-start variant.
        assert_trace_identical_from(&LooseProtocol::new(24), &g, seed, 1500, 8_000);
        assert_trace_identical_from(&RingLooseProtocol::for_ring(N), &g, seed, 1500, 8_000);
    }
    // The realistic-k identifier is the deliberate cap-overflow row:
    // the harness degrades to the generic ↔ lazy comparison.
    let g = families::cycle(64);
    let p = IdentifierProtocol::new(identifier_bits(64, false));
    assert!(
        !assert_trace_identical(&p, &g, 0x1D0, 1000, 6_000),
        "realistic k must overflow the AOT cap"
    );
}

#[test]
fn space_opt_compiled_table_agrees_with_the_trait() {
    let p = SpaceOptimalProtocol::practical(N);
    let c = CompiledProtocol::compile_default(&p, N).unwrap();
    assert!(c.num_states() as u64 <= p.state_space_bound().unwrap());
    assert_table_agrees(&p, &c);
}

#[test]
fn ring_time_opt_compiled_table_agrees_with_the_trait() {
    let p = TimeOptimalRingProtocol::for_ring(N);
    let c = CompiledProtocol::compile_with_seeds(&p, N, 1 << 14, &p.arbitrary_support()).unwrap();
    assert!(c.num_states() as u64 <= p.state_space_bound().unwrap());
    assert_table_agrees(&p, &c);
}

#[test]
fn space_opt_election_distribution_matches_sequential() {
    // The count-eligibility claim made by the sweep layer, backed the
    // same way as token/fast/majority: exactness in distribution
    // against the sequential waterfall on the clique workload. The
    // junta race's endgame (the last two ceiling-level candidates
    // waiting for a clock-aligned meeting) makes election time very
    // heavy-tailed — measured relative standard deviation ≈ 2 — so
    // this row needs the large samples and the token-like tolerances
    // (~4 standard errors of the difference at these trial counts).
    let p = SpaceOptimalProtocol::practical(128);
    assert_distributions_match(&p, 128, (768, 1536), (0.35, 0.35));
}

#[test]
fn space_opt_exhaustive_fast_path_agrees_with_the_trait_path() {
    // The compiled twin of the trait-side exhaustive suite in
    // crates/core/src/spaceopt.rs: identical seeds drive identical
    // executions, so the step-by-step oracle-vs-reachability validation
    // must agree step for step.
    let p = SpaceOptimalProtocol::new(1, 2);
    for n in [4u32, 5, 6] {
        let g = families::clique(n);
        let compiled = CompiledProtocol::compile_default(&p, n).unwrap();
        let typed = validate_oracle_on_execution(&p, &g, 3, 4000, DEFAULT_CONFIG_LIMIT);
        let fast =
            validate_oracle_on_execution_compiled(&compiled, &g, 3, 4000, DEFAULT_CONFIG_LIMIT);
        assert_eq!(typed, fast, "clique({n})");
        assert!(typed < 4000, "should elect quickly on clique({n})");
    }
}

#[test]
fn space_opt_exhaustive_verdicts_agree_on_every_reachable_configuration() {
    // Every configuration over the reachable state set of the minimal
    // parameterization on clique(3): the typed and compiled stability
    // judges must return the same verdict, configuration for
    // configuration.
    let p = SpaceOptimalProtocol::new(1, 2);
    let n = 3u32;
    let g = families::clique(n);
    let compiled = CompiledProtocol::compile_default(&p, n).unwrap();
    let states = compiled.states();
    let k = states.len();
    for code in 0..k.pow(n) {
        let mut code = code;
        let mut typed = Vec::with_capacity(n as usize);
        for _ in 0..n {
            typed.push(states[code % k]);
            code /= k;
        }
        let ids: Vec<_> = typed
            .iter()
            .map(|s| compiled.state_id(s).unwrap())
            .collect();
        assert_eq!(
            check_stable_and_correct(&p, &g, &typed, DEFAULT_CONFIG_LIMIT),
            check_stable_and_correct_compiled(&compiled, &g, &ids, DEFAULT_CONFIG_LIMIT),
            "verdicts diverged on {typed:?}"
        );
    }
}
