//! The lazy dense engine's contract with the trait engine — and the
//! three-way engine selection built on top of it.
//!
//! Three layers of evidence:
//!
//! 1. **Differential execution**: `LazyDenseExecutor` must produce the
//!    identical interaction sequence, configurations and `Outcome`s as
//!    the generic `Executor` for the same protocol/graph/seed — pinned
//!    here for exactly the workloads the ahead-of-time engine cannot
//!    take (the identifier protocol at realistic `k`, full-scale fast
//!    instances) across every decoder family (clique / packed / CSR),
//!    with and without fault plans (corruption, churn, rewire).
//! 2. **Monte-Carlo equivalence**: the lazy trial runners must be
//!    bit-identical to the generic ones across thread counts and
//!    shardings (warm pair caches must never leak into results).
//! 3. **Engine selection**: `run_trials_auto` must pick the documented
//!    engine for each of the workspace's protocols at representative
//!    sizes, record that choice in `TrialResult::engine`, and reach the
//!    cap-overflow verdict through the bounded probe (cheap selection).

mod harness;

use harness::{assert_trace_identical, small_families};
use popele::engine::dense::PROBE_EVAL_BUDGET;
use popele::engine::dense::{probe_state_space, SpaceProbe, DEFAULT_MAX_COMPILED_STATES};
use popele::engine::faults::{fault_seed, run_with_faults, FaultKind, FaultPlan};
use popele::engine::monte_carlo::{
    run_trials, run_trials_auto, run_trials_auto_with_faults, run_trials_lazy,
    run_trials_lazy_with_faults, run_trials_with_faults, select_engine, Engine, TrialOptions,
};
use popele::engine::{
    CompiledProtocol, Executor, LazyDenseExecutor, LeaderCountOracle, Protocol, Role,
};
use popele::graph::families;
use popele::protocols::params::{identifier_bits, FastParams};
use popele::protocols::{
    FastProtocol, IdentifierProtocol, MajorityProtocol, StarProtocol, TokenProtocol,
};

/// Identifier protocol at the simulation-realistic bit count for `n` —
/// the parameterization every sweep cell uses, whose state space
/// (`6·2^{k+1}`) overflows the AOT cap by orders of magnitude.
fn realistic_identifier(n: u32) -> IdentifierProtocol {
    IdentifierProtocol::new(identifier_bits(n, false))
}

/// Full-scale fast-protocol parameters: what `FastParams::practical`
/// derives for the large sparse sweep cells (cycle/star at n = 80 000:
/// the broadcast/degree ratio gives h = 17, L = ⌈log₂ n⌉ = 17). The
/// reachable state space is ≈ 2 200 states — past the AOT cap, so these
/// instances ride the lazy engine. (Dense families derive small h and
/// keep compiling ahead of time; the crossover is around n ≈ 16 000 on
/// sparse families.)
fn full_scale_fast() -> FastProtocol {
    FastProtocol::new(FastParams::new(17, 17, 4))
}

#[test]
fn identifier_realistic_k_trace_identical_on_all_small_families() {
    for g in small_families(64) {
        let p = realistic_identifier(g.num_nodes());
        assert!(
            CompiledProtocol::compile_default(&p, g.num_nodes()).is_err(),
            "realistic k must overflow the AOT cap on {g}"
        );
        assert_trace_identical(&p, &g, 0x1D0 ^ u64::from(g.num_nodes()), 3000, 20_000);
    }
}

#[test]
fn identifier_realistic_k_elections_equal_generic() {
    // Full elections (not just fixed-step traces) on the families where
    // they finish quickly at n = 64.
    for g in [
        families::clique(64),
        families::star(64),
        families::torus(8, 8),
    ] {
        let p = realistic_identifier(g.num_nodes());
        for seed in [3u64, 19] {
            let a = Executor::new(&g, &p, seed)
                .run_until_stable(1 << 26)
                .unwrap_or_else(|_| panic!("generic timed out on {g}"));
            let b = LazyDenseExecutor::new(&g, &p, seed)
                .run_until_stable(1 << 26)
                .unwrap_or_else(|_| panic!("lazy timed out on {g}"));
            assert_eq!(a, b, "{g} seed {seed}");
        }
    }
}

#[test]
fn identifier_realistic_k_trace_identical_on_csr_families() {
    // Node counts above 2¹⁶ push non-clique graphs onto the CSR edge
    // decoder; the identifier state space at the matching realistic k
    // (k = 34) is astronomically beyond the AOT cap.
    for g in [
        families::cycle(70_000),
        families::star(70_000),
        families::torus(270, 270),
    ] {
        let p = realistic_identifier(g.num_nodes());
        assert_trace_identical(&p, &g, 0xC5A, 2000, 20_000);
    }
}

#[test]
fn full_scale_fast_trace_identical_on_all_small_families() {
    for g in small_families(64) {
        let p = full_scale_fast();
        assert!(
            CompiledProtocol::compile_default(&p, g.num_nodes()).is_err(),
            "full-scale fast params must overflow the AOT cap"
        );
        assert_trace_identical(&p, &g, 0xFA57, 3000, 20_000);
    }
}

#[test]
fn full_scale_fast_trace_identical_at_full_scale() {
    // The actual full-scale workload: fast at n = 2000 (packed decoder)
    // and on a CSR-decoded family.
    for g in [families::cycle(2000), families::cycle(70_000)] {
        let p = full_scale_fast();
        assert_trace_identical(&p, &g, 0xF257, 2000, 30_000);
    }
}

/// The three fault-plan shapes of the acceptance grid.
fn fault_plans(n: u32) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "corrupt",
            FaultPlan::periodic(FaultKind::CorruptNodes { count: n / 8 }, 500, 700, 3),
        ),
        (
            "churn",
            FaultPlan::at(400, FaultKind::JoinNode { degree: 2 })
                .and(900, FaultKind::LeaveNode)
                .and(1400, FaultKind::JoinNode { degree: 3 })
                .and(1900, FaultKind::LeaveNode),
        ),
        (
            "rewire",
            FaultPlan::periodic(FaultKind::RewireEdge, 300, 500, 4),
        ),
    ]
}

#[test]
fn identifier_faulted_sessions_identical_across_engines() {
    let g = families::cycle(200);
    let p = realistic_identifier(200);
    for (label, plan) in fault_plans(200) {
        for seed in [5u64, 23] {
            let resolved = plan.resolve(&g, fault_seed(seed));
            let mut generic = Executor::new(&g, &p, seed);
            let generic_report = run_with_faults(&mut generic, &resolved, 400_000);
            let mut lazy = LazyDenseExecutor::new(&g, &p, seed);
            let lazy_report = run_with_faults(&mut lazy, &resolved, 400_000);
            assert_eq!(
                generic_report.result, lazy_report.result,
                "{label} seed {seed}"
            );
            assert_eq!(
                generic_report.trajectory, lazy_report.trajectory,
                "{label} seed {seed}"
            );
            assert_eq!(
                generic_report.recovery, lazy_report.recovery,
                "{label} seed {seed}"
            );
        }
    }
}

#[test]
fn full_scale_fast_faulted_sessions_identical_across_engines() {
    let g = families::torus(14, 14);
    let p = full_scale_fast();
    for (label, plan) in fault_plans(g.num_nodes()) {
        let seed = 31u64;
        let resolved = plan.resolve(&g, fault_seed(seed));
        let mut generic = Executor::new(&g, &p, seed);
        let generic_report = run_with_faults(&mut generic, &resolved, 400_000);
        let mut lazy = LazyDenseExecutor::new(&g, &p, seed);
        let lazy_report = run_with_faults(&mut lazy, &resolved, 400_000);
        assert_eq!(generic_report.result, lazy_report.result, "{label}");
        assert_eq!(generic_report.trajectory, lazy_report.trajectory, "{label}");
        assert_eq!(generic_report.recovery, lazy_report.recovery, "{label}");
    }
}

#[test]
fn lazy_trials_bit_identical_across_threads_and_shards() {
    // Warm per-worker pair caches must never leak into results: any
    // thread count and any sharding reproduces the generic run exactly.
    let g = families::cycle(48);
    let p = realistic_identifier(48);
    let opts = |threads, first_trial, trials| TrialOptions {
        trials,
        first_trial,
        max_steps: 1 << 22,
        census: false,
        lanes: false,
        threads,
    };
    let generic = run_trials(&g, &p, 0xBEEF, opts(1, 0, 8));
    let lazy1 = run_trials_lazy(&g, &p, 0xBEEF, opts(1, 0, 8));
    let lazy4 = run_trials_lazy(&g, &p, 0xBEEF, opts(4, 0, 8));
    assert_eq!(generic, lazy1);
    assert_eq!(generic, lazy4);
    let mut sharded = Vec::new();
    for (start, len) in [(0, 3), (3, 3), (6, 2)] {
        sharded.extend(run_trials_lazy(&g, &p, 0xBEEF, opts(2, start, len)));
    }
    assert_eq!(generic, sharded);
}

#[test]
fn lazy_faulted_trials_equal_generic_faulted_trials() {
    let g = families::cycle(64);
    let p = realistic_identifier(64);
    let plan = FaultPlan::at(800, FaultKind::CorruptNodes { count: 8 })
        .and(1600, FaultKind::JoinNode { degree: 2 })
        .and(2400, FaultKind::RewireEdge);
    let opts = |threads| TrialOptions {
        trials: 6,
        max_steps: 300_000,
        census: false,
        threads,
        ..TrialOptions::default()
    };
    let generic = run_trials_with_faults(&g, &p, 0xFA, opts(1), &plan);
    let lazy1 = run_trials_lazy_with_faults(&g, &p, 0xFA, opts(1), &plan);
    let lazy3 = run_trials_lazy_with_faults(&g, &p, 0xFA, opts(3), &plan);
    assert_eq!(generic, lazy1);
    assert_eq!(generic, lazy3);
    // The auto path picks the lazy engine for this workload and returns
    // the same results, tagged accordingly.
    let auto = run_trials_auto_with_faults(&g, &p, 0xFA, opts(2), &plan);
    assert_eq!(generic, auto);
    assert!(auto.iter().all(|r| r.engine == Engine::LazyDense));
    assert!(generic.iter().all(|r| r.engine == Engine::Generic));
}

/// A state space nobody can bound: selection must keep it on the
/// generic engine (the lazy interner would grow without limit).
#[derive(Clone, Copy)]
struct UnboundedCounter;

impl Protocol for UnboundedCounter {
    type State = u64;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: u32) -> u64 {
        0
    }

    fn transition(&self, a: &u64, b: &u64) -> (u64, u64) {
        (a + 1, *b)
    }

    fn output(&self, s: &u64) -> Role {
        if *s == 0 {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }
}

#[test]
fn engine_selection_for_the_six_protocols() {
    // The constant-state protocols compile ahead of time at any size…
    assert_eq!(
        select_engine(&TokenProtocol::all_candidates(), 80_000),
        Engine::Dense
    );
    assert_eq!(select_engine(&StarProtocol::new(), 80_000), Engine::Dense);
    assert_eq!(
        select_engine(&MajorityProtocol::new(48_000, 80_000), 80_000),
        Engine::Dense
    );
    // …small-parameter fast instances too (the clock subroutine rides
    // inside them; its h+1 ≤ 61 states always fit)…
    assert_eq!(
        select_engine(&FastProtocol::new(FastParams::new(1, 1, 2)), 64),
        Engine::Dense
    );
    // …while the paper's flagship identifier protocol at realistic k
    // and full-scale fast instances take the lazy engine…
    assert_eq!(
        select_engine(&realistic_identifier(2000), 2000),
        Engine::LazyDense
    );
    assert_eq!(
        select_engine(&realistic_identifier(80_000), 80_000),
        Engine::LazyDense
    );
    assert_eq!(select_engine(&full_scale_fast(), 2000), Engine::LazyDense);
    // …and a protocol that cannot even bound its state space stays on
    // the generic reference engine.
    assert_eq!(select_engine(&UnboundedCounter, 16), Engine::Generic);
}

#[test]
fn recorded_engine_matches_selection() {
    let opts = TrialOptions {
        trials: 2,
        max_steps: 1 << 22,
        census: false,
        threads: 1,
        ..TrialOptions::default()
    };
    // AOT tier.
    let g = families::clique(32);
    let token = TokenProtocol::all_candidates();
    let results = run_trials_auto(&g, &token, 1, opts);
    assert_eq!(select_engine(&token, 32), Engine::Dense);
    assert!(results.iter().all(|r| r.engine == Engine::Dense));
    // Lazy tier.
    let p = realistic_identifier(32);
    let results = run_trials_auto(&g, &p, 1, opts);
    assert_eq!(select_engine(&p, 32), Engine::LazyDense);
    assert!(results.iter().all(|r| r.engine == Engine::LazyDense));
    // Generic tier (bounded budget: the counter never stabilizes).
    let results = run_trials_auto(
        &g,
        &UnboundedCounter,
        1,
        TrialOptions {
            max_steps: 1000,
            ..opts
        },
    );
    assert_eq!(select_engine(&UnboundedCounter, 32), Engine::Generic);
    assert!(results.iter().all(|r| r.engine == Engine::Generic));
}

#[test]
fn engine_tag_is_provenance_not_identity() {
    // The equality used by every differential assertion in this file
    // deliberately ignores the engine tag; everything else must count.
    let g = families::clique(16);
    let p = TokenProtocol::all_candidates();
    let opts = TrialOptions {
        trials: 2,
        max_steps: 1 << 22,
        threads: 1,
        ..TrialOptions::default()
    };
    let a = run_trials(&g, &p, 9, opts);
    let mut b = run_trials_auto(&g, &p, 9, opts);
    assert_ne!(a[0].engine, b[0].engine);
    assert_eq!(a, b);
    b[0].trial += 1;
    assert_ne!(a, b);
}

#[test]
fn cap_overflow_verdict_is_reached_within_the_probe_budget() {
    // The regression the early-bail probe exists for: selecting the
    // generic/lazy path for the identifier protocol must not re-run the
    // BFS closure to overflow. An exact `TooLarge` within
    // PROBE_EVAL_BUDGET transition evaluations bounds the selection cost
    // at microseconds; `Inconclusive` here would mean selection silently
    // fell back to the expensive full compile on every sweep shard.
    for n in [2000u32, 80_000] {
        let p = realistic_identifier(n);
        assert_eq!(
            probe_state_space(&p, n, DEFAULT_MAX_COMPILED_STATES, PROBE_EVAL_BUDGET),
            SpaceProbe::TooLarge,
            "identifier at n = {n}"
        );
    }
    // And the probe must never mis-classify a compilable protocol: the
    // token protocol's closure (5 reachable of its 6 nominal states)
    // completes within the budget, with the same count compilation
    // enumerates.
    let token = TokenProtocol::all_candidates();
    let reachable = CompiledProtocol::compile_default(&token, 80_000)
        .unwrap()
        .num_states();
    assert_eq!(
        probe_state_space(
            &token,
            80_000,
            DEFAULT_MAX_COMPILED_STATES,
            PROBE_EVAL_BUDGET
        ),
        SpaceProbe::Fits(reachable)
    );
}
