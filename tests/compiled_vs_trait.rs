//! The compiled dense engine's contract with the trait engine.
//!
//! Two layers of evidence:
//!
//! 1. **Table agreement** (property tests over protocol parameters):
//!    for every shipped protocol, every entry of the compiled `|Λ|²`
//!    transition table and role table must agree with what
//!    `Protocol::transition` / `Protocol::output` compute on the typed
//!    states — checked exhaustively over all enumerated state pairs.
//! 2. **Differential execution**: `DenseExecutor` must produce
//!    identical `Outcome`s (leader, stabilization step, census) to the
//!    generic `Executor` for the same protocol/graph/seed, across graph
//!    families, and the compiled Monte-Carlo path must be bit-identical
//!    regardless of thread count.

mod harness;

use harness::{assert_table_agrees, diff_outcomes};
use popele::engine::monte_carlo::{run_trials, run_trials_auto, run_trials_dense, TrialOptions};
use popele::engine::{
    CompiledProtocol, DenseExecutor, Executor, LeaderCountOracle, Protocol, Role,
};
use popele::graph::families;
use popele::protocols::clock::StreakClock;
use popele::protocols::params::FastParams;
use popele::protocols::{
    FastProtocol, IdentifierProtocol, MajorityProtocol, StarProtocol, TokenProtocol,
};
use proptest::prelude::*;

/// The streak clock of Section 5.1 wrapped as a `Protocol`, so the
/// clock subroutine's compiled table is validated like the full
/// protocols (it has no leader outputs; only the table is compared).
#[derive(Debug, Clone)]
struct ClockProtocol {
    h: u8,
}

impl Protocol for ClockProtocol {
    type State = StreakClock;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: u32) -> StreakClock {
        StreakClock::new(self.h)
    }

    fn transition(&self, a: &StreakClock, b: &StreakClock) -> (StreakClock, StreakClock) {
        let (mut na, mut nb) = (*a, *b);
        na.on_interaction(true);
        nb.on_interaction(false);
        (na, nb)
    }

    fn output(&self, _state: &StreakClock) -> Role {
        Role::Follower
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn token_table_agrees(n in 2u32..40) {
        let p = TokenProtocol::all_candidates();
        let c = CompiledProtocol::compile_default(&p, n).unwrap();
        prop_assert!(c.num_states() <= 6);
        assert_table_agrees(&p, &c);
    }

    #[test]
    fn token_subset_table_agrees(n in 3u32..20, candidate in 0u32..3) {
        let p = TokenProtocol::with_candidates(vec![candidate % n, (candidate + 1) % n]);
        let c = CompiledProtocol::compile_default(&p, n).unwrap();
        assert_table_agrees(&p, &c);
    }

    #[test]
    fn star_table_agrees(n in 2u32..50) {
        let p = StarProtocol::new();
        let c = CompiledProtocol::compile_default(&p, n).unwrap();
        prop_assert_eq!(c.num_states(), 3);
        assert_table_agrees(&p, &c);
    }

    #[test]
    fn majority_table_agrees(n in 3u32..30, a_frac in 1u32..5) {
        let a = (n * a_frac / 6).max(1);
        prop_assume!(2 * a != n && a <= n);
        let p = MajorityProtocol::new(a, n);
        let c = CompiledProtocol::compile_default(&p, n).unwrap();
        prop_assert!(c.num_states() <= 4);
        assert_table_agrees(&p, &c);
    }

    #[test]
    fn clock_table_agrees(h in 1u8..8) {
        let p = ClockProtocol { h };
        let c = CompiledProtocol::compile_default(&p, 8).unwrap();
        prop_assert!(c.num_states() <= usize::from(h) + 1);
        assert_table_agrees(&p, &c);
    }

    #[test]
    fn identifier_table_agrees(k in 1u32..4) {
        // Small k keeps the O(2^k·6) state space within the compile cap;
        // realistic k falls back to the generic engine by design.
        let p = IdentifierProtocol::new(k);
        let c = CompiledProtocol::compile(&p, 6, 4096).unwrap();
        assert_table_agrees(&p, &c);
    }

    #[test]
    fn fast_table_agrees(h in 1u8..3, big_l in 1u32..3, alpha in 2u32..4) {
        let p = FastProtocol::new(FastParams::new(h, big_l, alpha));
        let c = CompiledProtocol::compile(&p, 6, 4096).unwrap();
        assert_table_agrees(&p, &c);
    }
}

#[test]
fn differential_token_on_four_families() {
    let p = TokenProtocol::all_candidates();
    for g in [
        families::clique(24),
        families::cycle(24),
        families::star(24),
        families::torus(5, 5),
    ] {
        diff_outcomes(&p, &g, &[1, 17, 0xDEAD], 1 << 34);
    }
}

#[test]
fn differential_token_on_large_cliques_exercises_hint_buckets() {
    // For m ≥ 2¹⁶ the clique decoder's row-hint table is bucketed
    // (shift > 0) and the correction loop actually advances; n = 500
    // (m = 124 750, shift 1) and n = 1000 (m = 499 500, shift 3) cover
    // it. Trace equality over enough steps visits edges across the
    // whole triangular index range, including bucket boundaries.
    let p = TokenProtocol::all_candidates();
    for n in [500u32, 1000] {
        let g = families::clique(n);
        let compiled = CompiledProtocol::compile_default(&p, n).unwrap();
        let mut generic = Executor::new(&g, &p, u64::from(n));
        let mut dense = DenseExecutor::new(&g, &compiled, u64::from(n));
        for _ in 0..3000 {
            assert_eq!(generic.step(), dense.step(), "clique({n})");
        }
        // Push the dense side through its fused runner too (run_steps
        // bypasses step()'s pair buffer), then compare configurations.
        generic.run_steps(20_000);
        dense.run_steps(20_000);
        for v in 0..n {
            assert_eq!(
                generic.states()[v as usize],
                *dense.state_of(v),
                "clique({n}) diverged at node {v}"
            );
        }
        assert_eq!(generic.is_stable(), dense.is_stable());
    }
}

#[test]
fn differential_token_on_csr_decoded_families() {
    // Node counts above 2¹⁶ push non-clique graphs onto the CSR edge
    // decoder (bucketed row hints + per-edge row deltas + column
    // gather). Trace equality against the generic executor across
    // sparse families with very different canonical edge-list shapes —
    // uniform rows (cycle), one giant row (star), 4-regular rows
    // (torus), and irregular random rows — pins the decode exactly.
    let p = TokenProtocol::all_candidates();
    for g in [
        families::cycle(70_000),
        families::star(70_000),
        families::torus(270, 270),
        popele::graph::random::random_regular_connected(70_000, 4, 11, 200),
    ] {
        let n = g.num_nodes();
        let compiled = CompiledProtocol::compile_default(&p, n).unwrap();
        let mut generic = Executor::new(&g, &p, 0xC5A);
        let mut dense = DenseExecutor::new(&g, &compiled, 0xC5A);
        for _ in 0..3000 {
            assert_eq!(generic.step(), dense.step(), "{g}");
        }
        // Push both engines through their batched paths too, then
        // compare the full configurations and stability verdicts.
        generic.run_steps(20_000);
        dense.run_steps(20_000);
        for v in 0..n {
            assert_eq!(
                generic.states()[v as usize],
                *dense.state_of(v),
                "{g} diverged at node {v}"
            );
        }
        assert_eq!(generic.is_stable(), dense.is_stable());
    }
}

#[test]
fn differential_star_protocol() {
    diff_outcomes(
        &StarProtocol::new(),
        &families::star(64),
        &[3, 4, 5],
        1 << 20,
    );
}

#[test]
fn differential_majority_on_three_families() {
    for g in [
        families::clique(15),
        families::cycle(15),
        families::star(15),
    ] {
        diff_outcomes(&MajorityProtocol::new(9, 15), &g, &[7, 8], 1 << 34);
    }
}

#[test]
fn differential_fast_protocol() {
    let p = FastProtocol::new(FastParams::new(1, 1, 2));
    for g in [families::clique(8), families::cycle(8)] {
        diff_outcomes(&p, &g, &[11, 12], 1 << 34);
    }
}

#[test]
fn differential_identifier_small_k() {
    // k = 2: 24 reachable states, compiled path available; its oracle is
    // *not* a pure leader count, exercising the typed-oracle dense path.
    let p = IdentifierProtocol::new(2);
    for g in [families::clique(10), families::path(6)] {
        diff_outcomes(&p, &g, &[21, 22], 1 << 34);
    }
}

#[test]
fn auto_trials_equal_generic_trials_and_threads_do_not_matter() {
    let g = families::clique(16);
    let p = TokenProtocol::all_candidates();
    let opts = |threads| TrialOptions {
        trials: 10,
        max_steps: 1 << 32,
        census: true,
        threads,
        ..TrialOptions::default()
    };
    let generic = run_trials(&g, &p, 0xC0FFEE, opts(1));
    let auto1 = run_trials_auto(&g, &p, 0xC0FFEE, opts(1));
    let auto4 = run_trials_auto(&g, &p, 0xC0FFEE, opts(4));
    assert_eq!(generic, auto1);
    assert_eq!(generic, auto4);

    let compiled = CompiledProtocol::compile_default(&p, 16).unwrap();
    let dense1 = run_trials_dense(&g, &compiled, 0xC0FFEE, opts(1));
    let dense3 = run_trials_dense(&g, &compiled, 0xC0FFEE, opts(3));
    assert_eq!(generic, dense1);
    assert_eq!(dense1, dense3);
}

#[test]
fn fallback_for_uncompilable_protocols_is_transparent() {
    // Realistic identifier parameters exceed the default cap: the auto
    // path must leave the AOT engine (it picks the lazy engine — see
    // tests/lazy_vs_trait.rs for the selection tests) and still return
    // identical results.
    let g = families::clique(10);
    let p = IdentifierProtocol::new(12);
    assert!(CompiledProtocol::compile_default(&p, 10).is_err());
    let opts = TrialOptions {
        trials: 4,
        max_steps: 1 << 32,
        census: false,
        threads: 2,
        ..TrialOptions::default()
    };
    assert_eq!(
        run_trials(&g, &p, 5, opts),
        run_trials_auto(&g, &p, 5, opts)
    );
}
