//! Cross-crate integration: every protocol elects exactly one leader on
//! every Table 1 family, deterministically per seed.

use popele::dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele::engine::{Executor, Protocol, Role};
use popele::graph::{families, random, Graph};
use popele::protocols::params::{identifier_bits, FastParams};
use popele::protocols::{FastProtocol, IdentifierProtocol, TokenProtocol};

const MAX_STEPS: u64 = 2_000_000_000;

fn table1_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique", families::clique(20)),
        ("cycle", families::cycle(20)),
        ("star", families::star(20)),
        ("torus", families::torus(4, 5)),
        (
            "rand-regular",
            random::random_regular_connected(20, 4, 1, 100),
        ),
        ("gnp", random::erdos_renyi_connected(20, 0.5, 2, 100)),
        ("binary-tree", families::binary_tree(21)),
        ("lollipop", families::lollipop(10, 10)),
    ]
}

fn assert_unique_leader<P: Protocol>(name: &str, g: &Graph, p: &P, seed: u64) {
    let mut exec = Executor::new(g, p, seed);
    let out = exec
        .run_until_stable(MAX_STEPS)
        .unwrap_or_else(|_| panic!("{name}: did not stabilize on {g}"));
    assert_eq!(out.leader_count, 1, "{name} on {g}");
    let leader = out.leader.expect("unique leader");
    // Re-derive the leader from the raw configuration.
    let leaders: Vec<u32> = exec
        .states()
        .iter()
        .enumerate()
        .filter(|(_, s)| p.output(s) == Role::Leader)
        .map(|(v, _)| v as u32)
        .collect();
    assert_eq!(leaders, vec![leader], "{name} on {g}");
    // Stability in practice: more interactions never change the outputs.
    exec.run_steps(20_000);
    assert_eq!(exec.leader(), Some(leader), "{name} output changed on {g}");
}

#[test]
fn token_protocol_all_families() {
    let p = TokenProtocol::all_candidates();
    for (name, g) in table1_graphs() {
        assert_unique_leader("token", &g, &p, 0xA11CE + name.len() as u64);
    }
}

#[test]
fn identifier_protocol_all_families() {
    for (name, g) in table1_graphs() {
        let p = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
        assert_unique_leader("identifier", &g, &p, 0xB0B + name.len() as u64);
    }
}

#[test]
fn identifier_protocol_paper_bits() {
    // The faithful k = ⌈4 log₂ n⌉ parameterization also works.
    let g = families::clique(16);
    let p = IdentifierProtocol::new(identifier_bits(16, true));
    assert_eq!(p.k(), 16);
    assert_unique_leader("identifier-paper", &g, &p, 99);
}

#[test]
fn fast_protocol_all_families() {
    for (name, g) in table1_graphs() {
        let b = estimate_broadcast_time(
            &g,
            5,
            &BroadcastConfig {
                sources: SourceStrategy::Heuristic(2),
                trials_per_source: 3,
                threads: 1,
            },
        )
        .b_estimate;
        let p = FastProtocol::new(FastParams::practical(
            b,
            g.max_degree(),
            g.num_edges(),
            g.num_nodes(),
        ));
        assert_unique_leader("fast", &g, &p, 0xFA57 + name.len() as u64);
    }
}

#[test]
fn fast_protocol_paper_params() {
    // The faithful Section 5.2 constants on a small clique (slow but
    // feasible: ticks every ≈ 2⁹·B(G) steps).
    let g = families::clique(8);
    let b = 8.0 * 3.0; // order-of-magnitude guess suffices
    let p = FastProtocol::new(FastParams::paper(b, 7, g.num_edges(), 8, 1));
    assert_unique_leader("fast-paper", &g, &p, 3);
}

#[test]
fn deterministic_across_protocol_instances() {
    // Same seed, freshly built graph and protocol → identical outcome.
    let build = || {
        let g = random::erdos_renyi_connected(24, 0.5, 9, 100);
        let p = IdentifierProtocol::new(10);
        let out = Executor::new(&g, &p, 31)
            .run_until_stable(MAX_STEPS)
            .unwrap();
        (out.stabilization_step, out.leader)
    };
    assert_eq!(build(), build());
}

#[test]
fn token_with_candidate_subset_elects_candidate() {
    let g = families::torus(4, 4);
    let candidates = vec![3u32, 7, 11];
    let p = TokenProtocol::with_candidates(candidates.clone());
    let out = Executor::new(&g, &p, 17)
        .run_until_stable(MAX_STEPS)
        .unwrap();
    assert!(candidates.contains(&out.leader.unwrap()));
}
