//! Cheap end-to-end checks that the paper's headline *shapes* hold:
//! who wins where, and by roughly what factor. The full sweeps live in
//! `popele-lab`; these are the fast regression-guard versions.

use popele::dynamics::broadcast::broadcast_time_from;
use popele::dynamics::isolation::estimate_isolation;
use popele::dynamics::walks::classic_worst_hitting;
use popele::engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
use popele::graph::renitent::cycle_cover;
use popele::graph::{families, random};
use popele::math::rng::SeedSeq;
use popele::protocols::params::identifier_bits;
use popele::protocols::{IdentifierProtocol, StarProtocol, TokenProtocol};

fn mean_steps<P: popele::engine::Protocol>(
    g: &popele::graph::Graph,
    p: &P,
    seed: u64,
    trials: usize,
) -> f64 {
    let stats = TrialStats::from_results(&run_trials(
        g,
        p,
        seed,
        TrialOptions {
            trials,
            max_steps: 2_000_000_000,
            census: false,
            threads: 0,
            ..TrialOptions::default()
        },
    ));
    assert_eq!(stats.timeouts, 0);
    stats.steps.mean()
}

/// Table 1, "Stars" row: O(1) time with O(1) states — literally one
/// interaction, at any size.
#[test]
fn stars_are_constant_time() {
    for n in [8u32, 64, 512] {
        let g = families::star(n);
        let mean = mean_steps(&g, &StarProtocol::new(), 1, 10);
        assert_eq!(mean, 1.0, "n = {n}");
    }
}

/// Theorem 46's observable consequence: on dense random graphs the
/// constant-state baseline is at least an order of magnitude slower than
/// the identifier protocol already at n = 48, and the gap widens with n.
#[test]
fn constant_state_pays_quadratic_price_on_dense_graphs() {
    let seq = SeedSeq::new(40);
    let token = TokenProtocol::all_candidates();
    let mut gaps = Vec::new();
    for (i, n) in [24u32, 48].into_iter().enumerate() {
        let g = random::erdos_renyi_connected(n, 0.5, seq.child(i as u64), 100);
        let id = IdentifierProtocol::new(identifier_bits(n, false));
        let token_steps = mean_steps(&g, &token, 7, 6);
        let id_steps = mean_steps(&g, &id, 8, 6);
        gaps.push(token_steps / id_steps);
    }
    assert!(gaps[0] > 2.0, "gap at n=24: {}", gaps[0]);
    assert!(gaps[1] > gaps[0], "gap must widen: {gaps:?}");
}

/// Cycles versus cliques: broadcast on a cycle is quadratic, on a clique
/// quasilinear — at n = 64 the cycle must already be several times
/// slower despite equal node counts.
#[test]
fn cycle_broadcast_much_slower_than_clique() {
    let n = 64u32;
    let seq = SeedSeq::new(50);
    let mean = |g: &popele::graph::Graph, base: u64| -> f64 {
        (0..6)
            .map(|i| broadcast_time_from(g, 0, seq.child(base + i)) as f64)
            .sum::<f64>()
            / 6.0
    };
    let cycle = mean(&families::cycle(n), 0);
    let clique = mean(&families::clique(n), 100);
    assert!(
        cycle > 3.0 * clique,
        "cycle {cycle} should dwarf clique {clique}"
    );
}

/// Lemma 37 in miniature: quadrupling the cycle size multiplies the
/// cover isolation time by roughly 16 (quadratic growth).
#[test]
fn cycle_isolation_grows_quadratically() {
    let small = {
        let (g, c) = cycle_cover(16);
        estimate_isolation(&g, &c, 12, u64::MAX, 3).times.mean()
    };
    let large = {
        let (g, c) = cycle_cover(64);
        estimate_isolation(&g, &c, 12, u64::MAX, 4).times.mean()
    };
    let ratio = large / small;
    assert!(
        (6.0..50.0).contains(&ratio),
        "quadrupling n should give ≈16× isolation time, got {ratio}"
    );
}

/// Theorem 16's driver: token-protocol stabilization tracks H(G)·n·log n
/// — the lollipop (worst-case hitting times) is far slower than the
/// clique at equal n.
#[test]
fn token_protocol_tracks_hitting_time() {
    let n = 24u32;
    let clique = families::clique(n);
    let lollipop = families::lollipop(n / 2, n / 2);
    let token = TokenProtocol::all_candidates();
    let h_clique = classic_worst_hitting(&clique);
    let h_lollipop = classic_worst_hitting(&lollipop);
    assert!(h_lollipop > 10.0 * h_clique);
    let t_clique = mean_steps(&clique, &token, 1, 6);
    let t_lollipop = mean_steps(&lollipop, &token, 2, 6);
    assert!(
        t_lollipop > 3.0 * t_clique,
        "lollipop {t_lollipop} vs clique {t_clique}"
    );
}
