//! The cross-tier differential harness shared by the workspace's
//! engine-contract suites.
//!
//! Every engine tier in this repo earns its keep the same way: it must
//! be indistinguishable from the generic reference executor on the same
//! protocol/graph/seed — bit-identical traces for the per-interaction
//! tiers, exactness in distribution for the count tier. This module
//! packages that contract once, parameterized over any
//! [`Protocol`] + graph, so a new protocol family buys its multi-engine
//! correctness story by *calling* the harness instead of re-deriving
//! the copy-paste differential pattern per suite:
//!
//! * [`assert_trace_identical`] — clean-start lockstep + batched trace
//!   identity, generic ↔ lazy always, and generic ↔ AOT-dense whenever
//!   the protocol compiles under the default cap (the return value says
//!   whether that third leg ran, so callers can demand it).
//! * [`assert_trace_identical_from`] — the self-stabilization variant:
//!   one shared *arbitrary* start configuration pushed through all
//!   three engines (the AOT table seeded with the sampler's support).
//! * [`assert_table_agrees`] — exhaustive `|Λ|²` agreement between a
//!   compiled transition/role table and the trait implementation.
//! * [`diff_outcomes`] — full seeded elections compared across the
//!   generic and AOT engines, census included.
//! * [`assert_distributions_match`] — the count tier's
//!   exactness-in-distribution contract on clique workloads.
//!
//! Consumed via `mod harness;` from `tests/protocol_matrix.rs`,
//! `tests/compiled_vs_trait.rs`, `tests/lazy_vs_trait.rs`,
//! `tests/stabilize_differential.rs` and `tests/count_distribution.rs`;
//! each test binary compiles its own copy, so helpers a given suite
//! does not call are expected dead code.
#![allow(dead_code)]

use popele::engine::monte_carlo::{
    run_trials_auto, run_trials_count, Engine, TrialOptions, TrialResult,
};
use popele::engine::stabilize::{arbitrary_config, arbitrary_seed, ArbitraryInit};
use popele::engine::{CompiledProtocol, DenseExecutor, Executor, LazyDenseExecutor, Protocol};
use popele::graph::{families, random, Graph};
use popele::math::stats::Summary;

/// The five graph families of the acceptance grid at a small size
/// (clique → arithmetic decoder, the rest → packed decoder).
pub fn small_families(n: u32) -> Vec<Graph> {
    let side = (f64::from(n).sqrt().round()) as u32;
    vec![
        families::clique(n),
        families::cycle(n),
        families::star(n),
        families::torus(side, side),
        random::random_regular_connected(n, 4, 11, 200),
    ]
}

/// The clique/cycle/torus trio every protocol family must pass the
/// trace-identity matrix on (the cross-tier acceptance floor — these
/// three cover the arithmetic, packed-uniform and packed-regular edge
/// decoders).
pub fn matrix_families(n: u32) -> Vec<Graph> {
    let side = (f64::from(n).sqrt().round()) as u32;
    vec![
        families::clique(n),
        families::cycle(n),
        families::torus(side, side),
    ]
}

/// Exhaustively checks every enumerated state pair of `compiled`
/// against the trait implementation.
pub fn assert_table_agrees<P: Protocol + Clone>(protocol: &P, compiled: &CompiledProtocol<P>) {
    let states = compiled.states();
    assert!(!states.is_empty());
    for (a, sa) in states.iter().enumerate() {
        assert_eq!(
            compiled.role(a as u16),
            protocol.output(sa),
            "role table disagrees on {sa:?}"
        );
        for (b, sb) in states.iter().enumerate() {
            let (na, nb) = protocol.transition(sa, sb);
            let na = compiled
                .state_id(&na)
                .expect("successor must be enumerated");
            let nb = compiled
                .state_id(&nb)
                .expect("successor must be enumerated");
            assert_eq!(
                compiled.successor(a as u16, b as u16),
                (na, nb),
                "transition table disagrees on ({sa:?}, {sb:?})"
            );
        }
    }
}

/// Steps the generic, lazy and (when the protocol compiles under the
/// default AOT cap) dense engines in lockstep from the clean initial
/// configuration, comparing sampled pairs and stability verdicts, then
/// pushes all of them through their batched paths and compares the full
/// configurations and outcomes.
///
/// Returns whether the AOT leg ran, so matrix callers can *demand*
/// three-way coverage while cap-overflow suites (which separately
/// assert the compile fails) get the two-way comparison they document.
pub fn assert_trace_identical<P: Protocol + Clone>(
    p: &P,
    g: &Graph,
    seed: u64,
    lockstep: usize,
    batched: u64,
) -> bool {
    let compiled = CompiledProtocol::compile_default(p, g.num_nodes()).ok();
    let mut generic = Executor::new(g, p, seed);
    let mut lazy = LazyDenseExecutor::new(g, p, seed);
    let mut dense = compiled.as_ref().map(|c| DenseExecutor::new(g, c, seed));
    for i in 0..lockstep {
        let step = generic.step();
        assert_eq!(step, lazy.step(), "{g} lazy diverged at step {i}");
        assert_eq!(generic.is_stable(), lazy.is_stable(), "{g} step {i}");
        if let Some(d) = dense.as_mut() {
            assert_eq!(step, d.step(), "{g} dense diverged at step {i}");
            assert_eq!(generic.is_stable(), d.is_stable(), "{g} step {i}");
        }
    }
    generic.run_steps(batched);
    lazy.run_steps(batched);
    if let Some(d) = dense.as_mut() {
        d.run_steps(batched);
    }
    for v in 0..g.num_nodes() {
        assert_eq!(
            generic.states()[v as usize],
            *lazy.state_of(v),
            "{g} lazy diverged at node {v}"
        );
        if let Some(d) = dense.as_ref() {
            assert_eq!(
                generic.states()[v as usize],
                *d.state_of(v),
                "{g} dense diverged at node {v}"
            );
        }
    }
    assert_eq!(generic.is_stable(), lazy.is_stable(), "{g} after batch");
    assert_eq!(generic.outcome(), lazy.outcome(), "{g} lazy outcome");
    if let Some(d) = dense.as_mut() {
        assert_eq!(generic.is_stable(), d.is_stable(), "{g} after batch");
        assert_eq!(generic.outcome(), d.outcome(), "{g} dense outcome");
    }
    dense.is_some()
}

/// Steps all three engines in lockstep from one shared *arbitrary*
/// configuration (the self-stabilization workload: the lazy engine must
/// intern unseen states on first sight, the AOT engine needs its
/// closure seeded with the sampler's support), comparing sampled pairs,
/// per-node states and stability verdicts, then pushes all three
/// through their batched paths and compares outcomes.
pub fn assert_trace_identical_from<P: ArbitraryInit + Clone>(
    p: &P,
    g: &Graph,
    seed: u64,
    lockstep: usize,
    batched: u64,
) {
    let config = arbitrary_config(p, g.num_nodes(), arbitrary_seed(seed));
    let compiled =
        CompiledProtocol::compile_with_seeds(p, g.num_nodes(), 1 << 14, &p.arbitrary_support())
            .expect("test support fits a large cap");
    let mut generic = Executor::new(g, p, seed);
    let mut dense = DenseExecutor::new(g, &compiled, seed);
    let mut lazy = LazyDenseExecutor::new(g, p, seed);
    generic.set_configuration(&config);
    dense.set_configuration(&config);
    lazy.set_configuration(&config);
    for i in 0..lockstep {
        let step = generic.step();
        assert_eq!(step, dense.step(), "{g} dense diverged at step {i}");
        assert_eq!(step, lazy.step(), "{g} lazy diverged at step {i}");
        assert_eq!(generic.is_stable(), dense.is_stable(), "{g} step {i}");
        assert_eq!(generic.is_stable(), lazy.is_stable(), "{g} step {i}");
    }
    generic.run_steps(batched);
    dense.run_steps(batched);
    lazy.run_steps(batched);
    for v in 0..g.num_nodes() {
        assert_eq!(
            generic.states()[v as usize],
            *dense.state_of(v),
            "{g} dense diverged at node {v}"
        );
        assert_eq!(
            generic.states()[v as usize],
            *lazy.state_of(v),
            "{g} lazy diverged at node {v}"
        );
    }
    assert_eq!(generic.outcome(), dense.outcome(), "{g} dense outcome");
    assert_eq!(generic.outcome(), lazy.outcome(), "{g} lazy outcome");
}

/// Full seeded elections (census enabled) compared between the generic
/// and AOT engines; the compile cap of 4096 admits the mid-size
/// parameterizations the default cap refuses.
pub fn diff_outcomes<P: Protocol + Clone>(p: &P, g: &Graph, seeds: &[u64], max_steps: u64) {
    let compiled = CompiledProtocol::compile(p, g.num_nodes(), 4096).unwrap();
    for &seed in seeds {
        let mut generic = Executor::new(g, p, seed);
        generic.enable_state_census();
        let mut dense = DenseExecutor::new(g, &compiled, seed);
        dense.enable_state_census();
        let a = generic.run_until_stable(max_steps);
        let b = dense.run_until_stable(max_steps);
        assert_eq!(a, b, "engines diverged on {g} with seed {seed}");
    }
}

/// Election times in parallel time (steps / n) from a trial batch;
/// panics if any trial exhausted its budget (these workloads stabilize
/// well within `u64::MAX`).
pub fn parallel_times(results: &[TrialResult], n: u64) -> Summary {
    Summary::from_slice(
        &results
            .iter()
            .map(|r| {
                let steps = r.stabilization_step.expect("trial must stabilize");
                steps as f64 / n as f64
            })
            .collect::<Vec<f64>>(),
    )
}

/// Asserts `a` and `b` agree within `tol` relative error.
pub fn assert_close(what: &str, a: f64, b: f64, tol: f64) {
    let rel = (a - b).abs() / b.abs().max(f64::EPSILON);
    assert!(
        rel <= tol,
        "{what}: count {a:.4} vs sequential {b:.4} (rel diff {rel:.4} > {tol})"
    );
}

/// The count tier's contract: exactness in distribution. Runs clique
/// elections of `protocol` through the sequential waterfall
/// (`dense_trials` trials on a materialized clique) and the count tier
/// (`count_trials` trials, graph-free — the count engine is an order of
/// magnitude cheaper here, so it usually gets the larger sample) and
/// compares mean, median and 0.9-quantile of the election-time
/// distributions. The master seeds differ so the samples are
/// independent; the tolerances are calibrated per protocol to ~4
/// standard errors of the difference at the given trial counts.
pub fn assert_distributions_match<P: Protocol + Clone>(
    protocol: &P,
    n: u64,
    (dense_trials, count_trials): (usize, usize),
    (tol_mean, tol_q): (f64, f64),
) {
    let graph = families::clique(u32::try_from(n).unwrap());
    let dense = run_trials_auto(
        &graph,
        protocol,
        0xD0_0D5,
        TrialOptions {
            trials: dense_trials,
            ..TrialOptions::default()
        },
    );
    let count = run_trials_count(
        protocol,
        n,
        0xC0_0475,
        TrialOptions {
            trials: count_trials,
            ..TrialOptions::default()
        },
    );

    assert_eq!(dense.len(), dense_trials);
    assert_eq!(count.len(), count_trials);
    for r in &dense {
        assert_ne!(r.engine, Engine::Count, "baseline must be sequential");
    }
    for r in &count {
        assert_eq!(r.engine, Engine::Count);
        assert_eq!(r.leader, None, "count trials have no agent identity");
    }

    let dense = parallel_times(&dense, n);
    let count = parallel_times(&count, n);
    assert_close("mean parallel time", count.mean(), dense.mean(), tol_mean);
    assert_close(
        "median parallel time",
        count.median(),
        dense.median(),
        tol_q,
    );
    assert_close(
        "0.9-quantile parallel time",
        count.quantile(0.9),
        dense.quantile(0.9),
        tol_q,
    );
}
