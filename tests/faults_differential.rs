//! The fault-injection subsystem's determinism contract, end to end,
//! with the paper's real protocols:
//!
//! 1. **Empty-plan identity**: running through the fault machinery with
//!    an empty [`FaultPlan`] is *trace-identical* to today's fault-free
//!    runs — same interaction sequence, same `Outcome`s, on both
//!    engines, and the faulted Monte-Carlo entry points return the very
//!    same results as the plain ones.
//! 2. **Engine agreement under faults**: for any plan (corruption,
//!    churn, rewiring) the generic and compiled engines produce
//!    identical reports — the scheduler stream survives graph changes
//!    and the dense engine's edge decoders are rebuilt correctly.
//! 3. **Thread/shard invariance**: fault-injected Monte-Carlo results
//!    are bit-identical across thread counts and `first_trial` shards.

use popele::engine::faults::{fault_seed, run_with_faults, FaultKind, FaultPlan};
use popele::engine::monte_carlo::{
    run_trials_auto, run_trials_auto_with_faults, run_trials_dense_with_faults,
    run_trials_with_faults, TrialOptions,
};
use popele::engine::{CompiledProtocol, DenseExecutor, Executor};
use popele::graph::families;
use popele::protocols::{MajorityProtocol, TokenProtocol};

fn opts(threads: usize) -> TrialOptions {
    TrialOptions {
        trials: 6,
        max_steps: 1 << 22,
        threads,
        ..TrialOptions::default()
    }
}

/// A plan exercising every fault kind.
fn stress_plan() -> FaultPlan {
    FaultPlan::at(300, FaultKind::CorruptNodes { count: 3 })
        .and(600, FaultKind::RewireEdge)
        .and(900, FaultKind::JoinNode { degree: 2 })
        .and(1_200, FaultKind::LeaveNode)
        .and(1_500, FaultKind::AddEdge)
        .and(1_800, FaultKind::RemoveEdge)
        .and(2_100, FaultKind::CorruptNodes { count: 2 })
}

#[test]
fn empty_plan_is_trace_identical_to_fault_free_runs() {
    let protocol = TokenProtocol::all_candidates();
    for g in [
        families::clique(24),
        families::cycle(24),
        families::star(24),
    ] {
        let n = g.num_nodes();
        let empty = FaultPlan::empty();
        let resolved = empty.resolve(&g, fault_seed(5));

        // Generic engine: the faulted session must walk the exact same
        // trajectory as a plain run, step for step.
        let mut plain = Executor::new(&g, &protocol, 5);
        let baseline = plain.run_until_stable(1 << 24).unwrap();
        let mut faulted = Executor::new(&g, &protocol, 5);
        let report = run_with_faults(&mut faulted, &resolved, 1 << 24);
        assert_eq!(report.result.as_ref().unwrap(), &baseline, "{g}");
        assert!(report.trajectory.is_empty());
        assert_eq!(report.recovery.last_fault_step, 0);

        // Compiled engine: same identity.
        let compiled = CompiledProtocol::compile_default(&protocol, n).unwrap();
        let mut plain = DenseExecutor::new(&g, &compiled, 5);
        let dense_baseline = plain.run_until_stable(1 << 24).unwrap();
        assert_eq!(dense_baseline, baseline);
        let mut faulted = DenseExecutor::new(&g, &compiled, 5);
        let report = run_with_faults(&mut faulted, &resolved, 1 << 24);
        assert_eq!(report.result.unwrap(), baseline, "{g} dense");
    }
}

#[test]
fn empty_plan_monte_carlo_matches_plain_entry_points() {
    let g = families::cycle(16);
    let protocol = TokenProtocol::all_candidates();
    let empty = FaultPlan::empty();
    let plain = run_trials_auto(&g, &protocol, 77, opts(2));
    assert_eq!(
        run_trials_auto_with_faults(&g, &protocol, 77, opts(2), &empty),
        plain
    );
    assert_eq!(
        run_trials_with_faults(&g, &protocol, 77, opts(2), &empty),
        plain
    );
    assert!(plain.iter().all(|r| r.recovery.is_none()));
}

#[test]
fn engines_agree_on_faulted_token_elections() {
    let protocol = TokenProtocol::all_candidates();
    let plan = stress_plan();
    for g in [
        families::clique(20),
        families::cycle(20),
        families::star(20),
        families::torus(5, 4),
    ] {
        let n = g.num_nodes();
        let compiled = CompiledProtocol::compile_default(&protocol, n + plan.max_joins()).unwrap();
        for seed in [1u64, 9, 42] {
            let resolved = plan.resolve(&g, fault_seed(seed));
            let mut generic = Executor::new(&g, &protocol, seed);
            let a = run_with_faults(&mut generic, &resolved, 1 << 24);
            let mut dense = DenseExecutor::new(&g, &compiled, seed);
            let b = run_with_faults(&mut dense, &resolved, 1 << 24);
            assert_eq!(a.result, b.result, "{g} seed {seed}");
            assert_eq!(a.trajectory, b.trajectory, "{g} seed {seed}");
            assert_eq!(a.recovery, b.recovery, "{g} seed {seed}");
        }
    }
}

#[test]
fn faulted_trials_match_across_engines_and_threads() {
    let g = families::cycle(18);
    let protocol = MajorityProtocol::new(11, 18);
    let plan =
        FaultPlan::at(400, FaultKind::CorruptNodes { count: 4 }).and(800, FaultKind::RewireEdge);
    let compiled = CompiledProtocol::compile_default(&protocol, 18).unwrap();

    let generic = run_trials_with_faults(&g, &protocol, 3, opts(1), &plan);
    let dense = run_trials_dense_with_faults(&g, &compiled, 3, opts(1), &plan);
    let auto = run_trials_auto_with_faults(&g, &protocol, 3, opts(1), &plan);
    assert_eq!(generic, dense);
    assert_eq!(generic, auto);
    assert!(generic.iter().all(|r| r.recovery.is_some()));

    // Thread counts never leak into results.
    for threads in [2, 4, 8] {
        assert_eq!(
            run_trials_auto_with_faults(&g, &protocol, 3, opts(threads), &plan),
            generic,
            "{threads} threads"
        );
    }
}

#[test]
fn faulted_shards_equal_one_big_run() {
    let g = families::clique(14);
    let protocol = TokenProtocol::all_candidates();
    let plan = FaultPlan::at(500, FaultKind::CorruptNodes { count: 3 })
        .and(1_000, FaultKind::JoinNode { degree: 3 });
    let whole = run_trials_auto_with_faults(
        &g,
        &protocol,
        55,
        TrialOptions {
            trials: 9,
            max_steps: 1 << 22,
            threads: 2,
            ..TrialOptions::default()
        },
        &plan,
    );
    let mut sharded = Vec::new();
    for (first_trial, trials) in [(0, 4), (4, 3), (7, 2)] {
        sharded.extend(run_trials_auto_with_faults(
            &g,
            &protocol,
            55,
            TrialOptions {
                trials,
                first_trial,
                max_steps: 1 << 22,
                threads: 2,
                ..TrialOptions::default()
            },
            &plan,
        ));
    }
    assert_eq!(whole, sharded);
    // Faults actually fired: corruption re-promotes candidates.
    assert!(whole
        .iter()
        .all(|r| r.recovery.expect("faulted").faults_applied >= 1));
}
