//! The count engine's contract with the sequential engines.
//!
//! The count-based batch engine consumes its random stream batch-wise,
//! so trace identity with the per-interaction engines is impossible *by
//! construction* — the contract is **exactness in distribution** with
//! respect to the uniform ordered-pair scheduler on a clique. Two
//! layers of evidence:
//!
//! 1. **Distribution-level differential tests** at population sizes
//!    both tiers can run (10³–10⁴): means and quantiles of election
//!    time in parallel time (steps/n) from [`run_trials_count`] must
//!    match the sequential engines on the same clique workload. Both
//!    sides are seeded, so each comparison is deterministic; the
//!    tolerances are ~4 standard errors of the difference at the given
//!    trial counts (from the measured relative standard deviations:
//!    ≈0.15 for the fast protocol, whose phase-clock concentrates the
//!    election, ≈0.47 for the token protocol's exponential endgame
//!    tail), so the *fast* rows resolve a ≳10% distributional shift
//!    and the token rows a ≳25% one. Sampler-level bias is pinned much
//!    tighter by the moment/χ² tests in `popele-math`.
//! 2. **Invariant checks at `n = 10⁸`**, where no differential baseline
//!    exists: population conservation after every batch epoch, a
//!    monotone leader-count trajectory for a protocol whose transitions
//!    never mint leaders, and determinism across identical seeds.
//!
//! Exact per-epoch mechanics are documented and unit-tested in
//! `crates/engine/src/dense/count.rs`.

mod harness;

use harness::assert_distributions_match;
use popele::engine::monte_carlo::{run_trials_count, TrialOptions};
use popele::engine::{compile_for_count, CountEngine};
use popele::protocols::params::FastParams;
use popele::protocols::{FastProtocol, TokenProtocol};

/// The fast protocol at the clique's analytic *practical*
/// parameterization (broadcast time is the coupon-collector bound
/// `n ln n`, max degree `n − 1`, `m = n(n−1)/2`) — the general-graph
/// constants, exercising the waiting phase the clique-tuned flavour
/// below collapses.
fn clique_fast(n: u64) -> FastProtocol {
    let nf = n as f64;
    let m = n * (n - 1) / 2;
    FastProtocol::new(FastParams::practical(
        nf * nf.ln(),
        u32::try_from(n - 1).unwrap(),
        usize::try_from(m).unwrap(),
        u32::try_from(n).unwrap(),
    ))
}

#[test]
fn fast_election_distribution_matches_sequential_1024() {
    assert_distributions_match(&clique_fast(1024), 1024, (48, 96), (0.10, 0.18));
}

/// At `n = 4096` the trial split flips: the fast protocol compiles to
/// ~2·10³ states, so the count engine's per-epoch work (chained draws
/// over the active states) makes *it* the expensive side — the
/// documented economics of why batching only wins when `n ≫ |Λ|²`. The
/// smaller count sample widens the supportable tolerances accordingly.
#[test]
fn fast_election_distribution_matches_sequential_4096() {
    assert_distributions_match(&clique_fast(4096), 4096, (64, 16), (0.18, 0.35));
}

/// The clique-specialized parameterization ([`FastParams::clique_tuned`])
/// is what the count tier's large-clique benchmarks and sweep cells
/// actually run, so it gets its own differential guard: collapsing the
/// waiting phase must shift the election-time distribution identically
/// in both tiers. The duel endgame (last two contenders trading levels)
/// gives this configuration a heavier tail than the practical flavour,
/// hence the token-like tolerances.
#[test]
fn clique_tuned_election_distribution_matches_sequential_1024() {
    let protocol = FastProtocol::new(FastParams::clique_tuned(1024));
    assert_distributions_match(&protocol, 1024, (48, 96), (0.20, 0.30));
}

#[test]
fn token_election_distribution_matches_sequential_1000() {
    let protocol = TokenProtocol::all_candidates();
    assert_distributions_match(&protocol, 1000, (64, 128), (0.25, 0.30));
}

/// At `n = 10⁸` no sequential engine can provide a baseline (a clique
/// edge list alone would be ~10¹⁶ pairs), so correctness is pinned by
/// the invariants the batch algebra must preserve: every epoch moves
/// counts between states without creating or destroying agents, and the
/// token protocol never mints a leader, so its leader count can only
/// fall.
#[test]
fn invariants_hold_at_1e8_agents() {
    const N: u64 = 100_000_000;
    let protocol = TokenProtocol::all_candidates();
    let compiled = compile_for_count(&protocol, N).expect("token compiles for count");
    let mut engine = CountEngine::new(&compiled, N, 0xBEEF);
    assert_eq!(engine.counts().iter().sum::<u64>(), N);

    let mut prev_leaders = engine.leader_count();
    for _ in 0..24 {
        engine.run_steps(2_000_000);
        assert_eq!(
            engine.counts().iter().sum::<u64>(),
            N,
            "population not conserved after a batch epoch"
        );
        let now = engine.leader_count();
        assert!(
            now <= prev_leaders,
            "leader count grew: {prev_leaders} -> {now}"
        );
        prev_leaders = now;
    }
}

/// The count tier is as deterministic as the sequential ones: the same
/// master seed reproduces every trial bit-for-bit, including at a
/// population no per-agent engine can hold.
#[test]
fn count_trials_are_deterministic_at_1e8_agents() {
    const N: u64 = 100_000_000;
    let protocol = TokenProtocol::all_candidates();
    let options = TrialOptions {
        trials: 2,
        max_steps: 50_000_000,
        ..TrialOptions::default()
    };
    let a = run_trials_count(&protocol, N, 99, options);
    let b = run_trials_count(&protocol, N, 99, options);
    assert_eq!(a, b);
}
